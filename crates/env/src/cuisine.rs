//! CuisineWorld-style collaborative cooking game (MindAgent's and COMBO's
//! task family): orders arrive over time, each needing a pipeline of
//! preparation stages at shared stations, and agents must keep throughput up.

use crate::action::{ExecOutcome, Subgoal};
use crate::environment::{Environment, LowLevel, TaskDifficulty};
use crate::observation::{Observation, SeenEntity};
use embodied_profiler::SimDuration;
use rand::Rng;

/// A dish's remaining pipeline, front = next stage.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Order {
    dish: String,
    stages: Vec<&'static str>, // e.g. ["fetch", "chop", "cook"]
    served: bool,
    arrived_at: usize, // execute-round index when the order appears
}

impl Order {
    fn next_stage(&self) -> Option<&'static str> {
        self.stages.first().copied()
    }
}

/// The cooking environment.
#[derive(Debug, Clone)]
pub struct CuisineEnv {
    orders: Vec<Order>,
    num_agents: usize,
    difficulty: TaskDifficulty,
    max_steps: usize,
    rounds: usize,
    /// Round in which each station was last used: one use per round — the
    /// physical contention that caps a kitchen's parallel throughput.
    station_used_round: std::collections::HashMap<&'static str, usize>,
    calls: usize,
}

const STATIONS: [&str; 4] = ["pantry", "chop_station", "stove", "serving_counter"];

fn station_for(stage: &str) -> &'static str {
    match stage {
        "fetch" => "pantry",
        "chop" => "chop_station",
        "cook" => "stove",
        _ => "serving_counter",
    }
}

impl CuisineEnv {
    /// Builds an instance: the order book scales with difficulty (3/6/9
    /// dishes; deeper pipelines at higher difficulty).
    ///
    /// # Panics
    ///
    /// Panics if `num_agents` is zero.
    pub fn new(difficulty: TaskDifficulty, num_agents: usize, seed: u64) -> Self {
        assert!(num_agents > 0, "need at least one agent");
        let _ = seed;
        let n_orders = 3 * difficulty.scale();
        let dish_names = ["salad", "soup", "stew", "curry", "noodles", "pie", "roast"];
        let orders: Vec<Order> = (0..n_orders)
            .map(|i| {
                let stages: Vec<&'static str> = match difficulty {
                    TaskDifficulty::Easy => vec!["fetch", "cook"],
                    TaskDifficulty::Medium => vec!["fetch", "chop", "cook"],
                    TaskDifficulty::Hard => {
                        if i % 2 == 0 {
                            vec!["fetch", "chop", "cook"]
                        } else {
                            vec!["fetch", "chop", "cook", "plate"]
                        }
                    }
                };
                Order {
                    dish: format!("{}_{i}", dish_names[i % dish_names.len()]),
                    stages,
                    served: false,
                    arrived_at: i * 2, // staggered arrivals
                }
            })
            .collect();
        let total_stage_work: usize = orders.iter().map(|o| o.stages.len() + 1).sum();
        let max_steps = 8 + total_stage_work * 5 / (2 * num_agents.min(4));
        CuisineEnv {
            orders,
            num_agents,
            difficulty,
            max_steps,
            rounds: 0,
            station_used_round: Default::default(),
            calls: 0,
        }
    }

    /// Number of served dishes.
    pub fn served_count(&self) -> usize {
        self.orders.iter().filter(|o| o.served).count()
    }

    fn active_orders(&self) -> impl Iterator<Item = &Order> {
        self.orders
            .iter()
            .filter(|o| !o.served && o.arrived_at <= self.rounds)
    }

    fn order_mut(&mut self, dish: &str) -> Option<&mut Order> {
        self.orders.iter_mut().find(|o| o.dish == dish)
    }

    fn tick(&mut self) {
        self.calls += 1;
        self.rounds = (self.calls - 1) / self.num_agents;
    }
}

impl Environment for CuisineEnv {
    fn name(&self) -> &str {
        "CuisineWorld"
    }

    fn num_agents(&self) -> usize {
        self.num_agents
    }

    fn max_steps(&self) -> usize {
        self.max_steps
    }

    fn difficulty(&self) -> TaskDifficulty {
        self.difficulty
    }

    fn goal_text(&self) -> String {
        format!(
            "Cook and serve all {} ordered dishes before the kitchen closes.",
            self.orders.len()
        )
    }

    fn landmarks(&self) -> Vec<String> {
        STATIONS.iter().map(|s| (*s).to_owned()).collect()
    }

    fn observe(&self, _agent: usize) -> Observation {
        let mut visible: Vec<SeenEntity> = self
            .active_orders()
            .map(|o| {
                let stage = o.next_stage().unwrap_or("serve");
                SeenEntity::new(o.dish.clone(), format!("order {} awaiting {stage}", o.dish))
            })
            .collect();
        for s in STATIONS {
            visible.push(SeenEntity::new(s, format!("the {s}")));
        }
        Observation {
            agent_pos: None,
            location: "kitchen".into(),
            visible,
            status: format!(
                "{}/{} dishes served",
                self.served_count(),
                self.orders.len()
            ),
        }
    }

    fn oracle_subgoals(&self, agent: usize) -> Vec<Subgoal> {
        // Spread agents over the oldest active orders round-robin.
        let active: Vec<&Order> = self.active_orders().collect();
        if active.is_empty() {
            return Vec::new();
        }
        let mut subgoals = Vec::new();
        let start = agent % active.len();
        for i in 0..active.len() {
            let order = active[(start + i) % active.len()];
            let sg = match order.next_stage() {
                Some(stage) => Subgoal::Cook {
                    dish: order.dish.clone(),
                    stage: stage.to_owned(),
                },
                None => Subgoal::Serve {
                    dish: order.dish.clone(),
                },
            };
            subgoals.push(sg);
        }
        subgoals
    }

    fn candidate_subgoals(&self, _agent: usize) -> Vec<Subgoal> {
        let mut all = Vec::new();
        for order in &self.orders {
            if order.served {
                continue;
            }
            for stage in ["fetch", "chop", "cook", "plate"] {
                all.push(Subgoal::Cook {
                    dish: order.dish.clone(),
                    stage: stage.to_owned(),
                });
            }
            all.push(Subgoal::Serve {
                dish: order.dish.clone(),
            });
        }
        all.push(Subgoal::Explore);
        all.push(Subgoal::Wait);
        all
    }

    fn execute(&mut self, _agent: usize, subgoal: &Subgoal, low: &mut LowLevel) -> ExecOutcome {
        self.tick();
        match subgoal {
            Subgoal::Cook { dish, stage } => {
                // The agent physically goes to the station first: a busy
                // station blocks any attempt, and any attempt — right or
                // wrong — occupies it for the round. Confused teammates
                // fumbling at the stove are the interference that caps
                // large-team throughput (paper §VI).
                let station = station_for(stage);
                if self.station_used_round.get(station) == Some(&self.rounds) {
                    return ExecOutcome::failure(format!("{station} is busy"));
                }
                self.station_used_round.insert(station, self.rounds);
                let rounds = self.rounds;
                let Some(order) = self.order_mut(dish) else {
                    return ExecOutcome::failure(format!("no order for {dish}"));
                };
                if order.served {
                    return ExecOutcome::failure(format!("{dish} was already served"));
                }
                if order.arrived_at > rounds {
                    return ExecOutcome::failure(format!("{dish} has not been ordered yet"));
                }
                match order.next_stage() {
                    Some(expected) if expected == stage => {
                        let drive = low.actuator.drive(SimDuration::from_millis(2_600));
                        let success =
                            drive.success && low.rng.gen_bool(low.competence.clamp(0.0, 1.0));
                        if success {
                            let order = self.order_mut(dish).expect("checked above");
                            order.stages.remove(0);
                        }
                        ExecOutcome {
                            completed: success,
                            made_progress: success,
                            compute: SimDuration::from_millis(30),
                            actuation: drive.total_time,
                            note: if success {
                                format!("{stage} done for {dish}")
                            } else {
                                format!("{stage} failed for {dish}")
                            },
                        }
                    }
                    Some(expected) => {
                        ExecOutcome::failure(format!("{dish} needs {expected} before {stage}"))
                    }
                    None => ExecOutcome::failure(format!("{dish} is ready to serve, not {stage}")),
                }
            }
            Subgoal::Serve { dish } => {
                let rounds = self.rounds;
                let Some(order) = self.order_mut(dish) else {
                    return ExecOutcome::failure(format!("no order for {dish}"));
                };
                if order.served {
                    return ExecOutcome::failure(format!("{dish} was already served"));
                }
                if order.arrived_at > rounds {
                    return ExecOutcome::failure(format!("{dish} has not been ordered yet"));
                }
                if order.next_stage().is_some() {
                    return ExecOutcome::failure(format!("{dish} is not ready to serve"));
                }
                let drive = low.actuator.drive(SimDuration::from_millis(1_500));
                if drive.success {
                    self.order_mut(dish).expect("checked above").served = true;
                }
                ExecOutcome {
                    completed: drive.success,
                    made_progress: drive.success,
                    compute: SimDuration::from_millis(20),
                    actuation: drive.total_time,
                    note: if drive.success {
                        format!("served {dish}")
                    } else {
                        format!("dropped {dish} while serving")
                    },
                }
            }
            Subgoal::Wait | Subgoal::Explore => ExecOutcome {
                completed: true,
                made_progress: false,
                compute: SimDuration::ZERO,
                actuation: SimDuration::from_millis(300),
                note: "idled in the kitchen".into(),
            },
            other => ExecOutcome::failure(format!("unsupported subgoal: {other}")),
        }
    }

    fn is_complete(&self) -> bool {
        self.orders.iter().all(|o| o.served)
    }

    fn progress(&self) -> f64 {
        if self.orders.is_empty() {
            1.0
        } else {
            self.served_count() as f64 / self.orders.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_rollout(env: &mut CuisineEnv, seed: u64) -> usize {
        let mut low = LowLevel::controller(seed);
        let mut steps = 0;
        while !env.is_complete() && steps < env.max_steps() * 3 {
            for agent in 0..env.num_agents() {
                let sg = env
                    .oracle_subgoals(agent)
                    .first()
                    .cloned()
                    .unwrap_or(Subgoal::Wait);
                env.execute(agent, &sg, &mut low);
            }
            steps += 1;
        }
        steps
    }

    #[test]
    fn oracle_serves_everything_single_agent() {
        let mut e = CuisineEnv::new(TaskDifficulty::Easy, 1, 0);
        let steps = oracle_rollout(&mut e, 1);
        assert!(
            e.is_complete(),
            "only served {} after {steps}",
            e.served_count()
        );
    }

    #[test]
    fn two_agents_finish_medium_kitchen() {
        let mut e = CuisineEnv::new(TaskDifficulty::Medium, 2, 0);
        oracle_rollout(&mut e, 2);
        assert!(e.is_complete());
    }

    #[test]
    fn stages_enforce_order() {
        let mut e = CuisineEnv::new(TaskDifficulty::Medium, 1, 0);
        let mut low = LowLevel::controller(0);
        let dish = e.orders[0].dish.clone();
        let out = e.execute(
            0,
            &Subgoal::Cook {
                dish: dish.clone(),
                stage: "cook".into(),
            },
            &mut low,
        );
        assert!(!out.completed);
        assert!(out.note.contains("needs fetch"));
    }

    #[test]
    fn cannot_serve_unfinished_dish() {
        let mut e = CuisineEnv::new(TaskDifficulty::Easy, 1, 0);
        let mut low = LowLevel::controller(0);
        let dish = e.orders[0].dish.clone();
        let out = e.execute(0, &Subgoal::Serve { dish }, &mut low);
        assert!(!out.completed);
    }

    #[test]
    fn orders_arrive_staggered() {
        let e = CuisineEnv::new(TaskDifficulty::Hard, 2, 0);
        // At round 0, only the first order is active.
        assert_eq!(e.active_orders().count(), 1);
    }

    #[test]
    fn unordered_dish_rejected() {
        let mut e = CuisineEnv::new(TaskDifficulty::Hard, 1, 0);
        let mut low = LowLevel::controller(0);
        let late_dish = e.orders.last().unwrap().dish.clone();
        let out = e.execute(
            0,
            &Subgoal::Cook {
                dish: late_dish,
                stage: "fetch".into(),
            },
            &mut low,
        );
        assert!(!out.completed);
        assert!(out.note.contains("not been ordered"));
    }

    #[test]
    fn oracle_spreads_agents_across_orders() {
        let mut e = CuisineEnv::new(TaskDifficulty::Hard, 3, 0);
        e.rounds = 100; // make all orders active
        let first: Vec<String> = (0..3)
            .map(|a| {
                e.oracle_subgoals(a)
                    .first()
                    .map(|sg| sg.to_string())
                    .unwrap_or_default()
            })
            .collect();
        // Three agents should not all target the same dish.
        assert!(
            !(first[0] == first[1] && first[1] == first[2]),
            "all agents targeted {first:?}"
        );
    }

    #[test]
    fn progress_counts_served() {
        let mut e = CuisineEnv::new(TaskDifficulty::Easy, 1, 0);
        assert_eq!(e.progress(), 0.0);
        let n = e.orders.len();
        e.orders[0].served = true;
        assert!((e.progress() - 1.0 / n as f64).abs() < 1e-12);
    }
}
