//! The embodied fault plane: deterministic perception/actuation fault
//! injection at the [`Environment`] seam.
//!
//! Every deployed embodied stack degrades first at the sensor/actuator
//! boundary, yet the other four fault planes (LLM, agent/channel, semantic,
//! serving) all treat the world itself as ground truth. [`FaultyEnv`] closes
//! that gap: it wraps any environment and perturbs what the agent *senses*
//! (entity dropout, phantom entities, frozen frames, landmark misreads) and
//! what its actions *do* (silent no-ops, partial-effect slips, actuator
//! downtime windows), while the world underneath stays exact.
//!
//! Two invariants make the plane usable for controlled experiments:
//!
//! * **Perception faults are consistent across the sensing surface.** The
//!   degraded view is computed once per agent per step and served to
//!   `observe`, `candidate_subgoals`, `affordances` *and* (filtered/renamed)
//!   `oracle_subgoals` alike, so a guardrail validating plans against
//!   affordances sees exactly the degraded world the agent saw — phantom
//!   entities pass validation and fail at the real seam, which is what makes
//!   re-grounding (a fresh observation) the correct recovery and a reprompt
//!   a doomed one.
//! * **Determinism with zero draws under [`EnvFaultProfile::none()`].** All
//!   randomness comes from one dedicated `StdRng` stream advanced in a
//!   fixed, agent-ordered schedule inside [`Environment::begin_step`] and
//!   `execute`; a `none()` profile never touches it, so a wrapped env is a
//!   strict pass-through. Recovery-side re-observation
//!   ([`Environment::refresh_perception`]) rebuilds the view from ground
//!   truth *without* drawing, so enabling recovery cannot shift the fault
//!   stream — recovery-on and recovery-off runs face identical faults.

use crate::action::{ExecOutcome, Subgoal};
use crate::environment::{Environment, LowLevel, TaskDifficulty};
use crate::observation::{Observation, SeenEntity};
use embodied_profiler::{EnvFaultStats, FromJson, JsonError, JsonValue, ToJson};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Salt for the dedicated env-fault RNG stream, distinct from every other
/// seeded stream in the suite.
const ENV_FAULT_SALT: u64 = 0x00e2_f417_0b5e;

/// Names injected as phantom entities — deliberately outside every
/// environment's real vocabulary so execution against one fails at the true
/// seam ("does not exist"), never by accident succeeds.
const PHANTOMS: [&str; 4] = [
    "phantom_crate",
    "phantom_lever",
    "phantom_box",
    "phantom_bin",
];

/// Wrong names a landmark misread substitutes — synthetic so they cannot
/// collide with a real entity in any environment.
const MISREAD_ALIASES: [&str; 4] = ["misty_crate", "dusty_lever", "worn_panel", "dim_door"];

fn check_rate(field: &'static str, value: f64) -> Result<f64, String> {
    if value.is_nan() {
        return Err(format!("{field} is NaN"));
    }
    if !(0.0..=1.0).contains(&value) {
        return Err(format!("{field} = {value} is outside [0, 1]"));
    }
    Ok(value)
}

/// Perception/actuation fault probabilities for one wrapped environment.
/// The default ([`EnvFaultProfile::none()`]) is a perfect world: sensors
/// report ground truth and every actuation lands as the physics dictates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvFaultProfile {
    /// Per-agent per-step probability one visible entity drops out of the
    /// observation (and out of the affordance menu with it).
    pub dropout: f64,
    /// Per-agent per-step probability a phantom entity appears in the
    /// observation *and* the affordance menu — a hallucinated detection the
    /// guardrail cannot catch, because the sensing surface itself asserts it.
    pub phantom: f64,
    /// Per-agent per-step probability the observation freezes: the agent is
    /// served the same stale frame for [`Self::stale_steps`] steps while the
    /// world moves on underneath.
    pub stale: f64,
    /// Length of a frozen-observation window, in steps.
    pub stale_steps: usize,
    /// Per-agent per-step probability one visible entity is misread under a
    /// wrong name — consistently across observation and affordances, so
    /// plans against the misread name validate and then fail at actuation.
    pub misread: f64,
    /// Per-action probability the actuation silently no-ops: the world is
    /// untouched and the agent is told the subgoal failed.
    pub silent_fail: f64,
    /// Per-action probability of a partial-effect slip: the action lands in
    /// the world but the outcome reports it as incomplete, so the agent may
    /// pointlessly redo completed work.
    pub slip: f64,
    /// Per-agent per-step probability the actuator goes down for
    /// [`Self::down_steps`] steps; non-idle subgoals fail instantly while
    /// the window is open.
    pub actuator_down: f64,
    /// Length of an actuator downtime window, in steps.
    pub down_steps: usize,
}

impl Default for EnvFaultProfile {
    fn default() -> Self {
        Self::none()
    }
}

impl EnvFaultProfile {
    /// A perfect world: no perception or actuation faults, zero RNG draws.
    pub fn none() -> Self {
        EnvFaultProfile {
            dropout: 0.0,
            phantom: 0.0,
            stale: 0.0,
            stale_steps: 2,
            misread: 0.0,
            silent_fail: 0.0,
            slip: 0.0,
            actuator_down: 0.0,
            down_steps: 2,
        }
    }

    /// Perception-side faults only, all at `rate`.
    pub fn perception(rate: f64) -> Self {
        EnvFaultProfile {
            dropout: rate,
            phantom: rate,
            stale: rate,
            misread: rate,
            ..Self::none()
        }
    }

    /// Actuation-side faults only, all at `rate`.
    pub fn actuation(rate: f64) -> Self {
        EnvFaultProfile {
            silent_fail: rate,
            slip: rate,
            actuator_down: rate,
            ..Self::none()
        }
    }

    /// Every fault mode at `rate`.
    pub fn uniform(rate: f64) -> Self {
        EnvFaultProfile {
            dropout: rate,
            phantom: rate,
            stale: rate,
            misread: rate,
            silent_fail: rate,
            slip: rate,
            actuator_down: rate,
            ..Self::none()
        }
    }

    /// Whether this profile injects nothing (and therefore draws nothing).
    pub fn is_none(&self) -> bool {
        self.dropout == 0.0
            && self.phantom == 0.0
            && self.stale == 0.0
            && self.misread == 0.0
            && self.silent_fail == 0.0
            && self.slip == 0.0
            && self.actuator_down == 0.0
    }

    /// Sum of the perception-side rates (scenario-evolution fault budget).
    pub fn perception_mass(&self) -> f64 {
        self.dropout + self.phantom + self.stale + self.misread
    }

    /// Sum of the actuation-side rates (scenario-evolution fault budget).
    pub fn actuation_mass(&self) -> f64 {
        self.silent_fail + self.slip + self.actuator_down
    }

    /// Validates every rate is a real probability and every window a usable
    /// length, returning the profile unchanged on success.
    pub fn validated(self) -> Result<Self, String> {
        check_rate("dropout", self.dropout)?;
        check_rate("phantom", self.phantom)?;
        check_rate("stale", self.stale)?;
        check_rate("misread", self.misread)?;
        check_rate("silent_fail", self.silent_fail)?;
        check_rate("slip", self.slip)?;
        check_rate("actuator_down", self.actuator_down)?;
        if self.stale > 0.0 && self.stale_steps == 0 {
            return Err("stale_steps must be >= 1 when stale > 0".into());
        }
        if self.actuator_down > 0.0 && self.down_steps == 0 {
            return Err("down_steps must be >= 1 when actuator_down > 0".into());
        }
        Ok(self)
    }
}

impl ToJson for EnvFaultProfile {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("dropout".into(), JsonValue::Num(self.dropout)),
            ("phantom".into(), JsonValue::Num(self.phantom)),
            ("stale".into(), JsonValue::Num(self.stale)),
            (
                "stale_steps".into(),
                JsonValue::Num(self.stale_steps as f64),
            ),
            ("misread".into(), JsonValue::Num(self.misread)),
            ("silent_fail".into(), JsonValue::Num(self.silent_fail)),
            ("slip".into(), JsonValue::Num(self.slip)),
            ("actuator_down".into(), JsonValue::Num(self.actuator_down)),
            ("down_steps".into(), JsonValue::Num(self.down_steps as f64)),
        ])
    }
}

impl FromJson for EnvFaultProfile {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        EnvFaultProfile {
            dropout: value.f64_field("dropout")?,
            phantom: value.f64_field("phantom")?,
            stale: value.f64_field("stale")?,
            stale_steps: value.u64_field("stale_steps")? as usize,
            misread: value.f64_field("misread")?,
            silent_fail: value.f64_field("silent_fail")?,
            slip: value.f64_field("slip")?,
            actuator_down: value.f64_field("actuator_down")?,
            down_steps: value.u64_field("down_steps")? as usize,
        }
        .validated()
        .map_err(|e| JsonError::msg(format!("EnvFaultProfile: {e}")))
    }
}

/// One agent's degraded view of the world, rebuilt each step (or frozen in
/// place while a stale window is open).
struct AgentView {
    observation: Observation,
    candidates: Vec<Subgoal>,
    /// Misreads applied this frame: `(true_name, misread_name)`.
    renames: Vec<(String, String)>,
    /// Entity names dropped from this frame.
    dropped: Vec<String>,
}

/// Renames every reference to `from` inside one subgoal.
fn rename_entity(sg: &mut Subgoal, from: &str, to: &str) {
    let fix = |s: &mut String| {
        if s == from {
            to.clone_into(s);
        }
    };
    match sg {
        Subgoal::GoTo { target, .. } => fix(target),
        Subgoal::Pick { object } => fix(object),
        Subgoal::Place { object, dest } => {
            fix(object);
            fix(dest);
        }
        Subgoal::Open { container } => fix(container),
        Subgoal::Gather { resource } => fix(resource),
        Subgoal::Craft { item } => fix(item),
        Subgoal::Cook { dish, .. } => fix(dish),
        Subgoal::Serve { dish } => fix(dish),
        Subgoal::MoveBox { box_name, dest } => {
            fix(box_name);
            fix(dest);
        }
        Subgoal::LiftTogether { box_name, .. } => fix(box_name),
        Subgoal::ArmMove { object, .. } => fix(object),
        Subgoal::Skill { .. } | Subgoal::Explore | Subgoal::Wait => {}
    }
}

/// Deterministic perception/actuation fault decorator around any
/// [`Environment`]. See the module docs for the two invariants (consistent
/// degraded sensing surface; zero draws under `none()`).
pub struct FaultyEnv<E: Environment> {
    inner: E,
    profile: EnvFaultProfile,
    rng: StdRng,
    step: usize,
    views: Vec<AgentView>,
    /// Per-agent step at which the frozen frame thaws, while stale.
    stale_until: Vec<Option<usize>>,
    /// Per-agent step at which the actuator comes back, while down.
    down_until: Vec<Option<usize>>,
    stats: EnvFaultStats,
}

impl<E: Environment> FaultyEnv<E> {
    /// Wraps `inner` with the given fault profile on a dedicated RNG stream
    /// derived from `seed`.
    pub fn new(inner: E, profile: EnvFaultProfile, seed: u64) -> Self {
        let n = inner.num_agents();
        let views = (0..n)
            .map(|agent| AgentView {
                observation: inner.observe(agent),
                candidates: inner.candidate_subgoals(agent),
                renames: Vec::new(),
                dropped: Vec::new(),
            })
            .collect();
        FaultyEnv {
            inner,
            profile,
            rng: StdRng::seed_from_u64(seed ^ ENV_FAULT_SALT),
            step: 0,
            views,
            stale_until: vec![None; n],
            down_until: vec![None; n],
            stats: EnvFaultStats::default(),
        }
    }

    /// The active fault profile.
    pub fn profile(&self) -> &EnvFaultProfile {
        &self.profile
    }

    /// Whether `agent`'s actuator is inside a downtime window right now.
    pub fn actuator_down(&self, agent: usize) -> bool {
        self.down_until[agent].is_some()
    }

    /// Rebuilds one agent's degraded view from ground truth, drawing the
    /// perception faults for this frame.
    fn degrade_view(&mut self, agent: usize) {
        let mut observation = self.inner.observe(agent);
        let mut candidates = self.inner.candidate_subgoals(agent);
        let mut renames = Vec::new();
        let mut dropped = Vec::new();
        let p = self.profile;
        if p.dropout > 0.0 && self.rng.gen_bool(p.dropout) && !observation.visible.is_empty() {
            let idx = self.rng.gen_range(0..observation.visible.len());
            let name = observation.visible.remove(idx).name;
            candidates.retain(|sg| !sg.referenced_entities().contains(&name.as_str()));
            dropped.push(name);
            self.stats.dropped_entities += 1;
        }
        if p.phantom > 0.0 && self.rng.gen_bool(p.phantom) {
            let name = PHANTOMS[self.rng.gen_range(0..PHANTOMS.len())];
            observation
                .visible
                .push(SeenEntity::new(name, format!("{name} within reach")));
            candidates.push(Subgoal::Pick {
                object: name.into(),
            });
            self.stats.phantom_entities += 1;
        }
        if p.misread > 0.0 && self.rng.gen_bool(p.misread) && !observation.visible.is_empty() {
            let idx = self.rng.gen_range(0..observation.visible.len());
            let alias = MISREAD_ALIASES[self.rng.gen_range(0..MISREAD_ALIASES.len())].to_string();
            let true_name = observation.visible[idx].name.clone();
            if true_name != alias {
                observation.visible[idx].name = alias.clone();
                observation.visible[idx].description = format!("{alias}, partially occluded");
                for sg in &mut candidates {
                    rename_entity(sg, &true_name, &alias);
                }
                renames.push((true_name, alias));
                self.stats.misread_entities += 1;
            }
        }
        self.views[agent] = AgentView {
            observation,
            candidates,
            renames,
            dropped,
        };
    }
}

impl<E: Environment> Environment for FaultyEnv<E> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_agents(&self) -> usize {
        self.inner.num_agents()
    }

    fn max_steps(&self) -> usize {
        self.inner.max_steps()
    }

    fn difficulty(&self) -> TaskDifficulty {
        self.inner.difficulty()
    }

    fn goal_text(&self) -> String {
        self.inner.goal_text()
    }

    fn landmarks(&self) -> Vec<String> {
        self.inner.landmarks()
    }

    fn observe(&self, agent: usize) -> Observation {
        if self.profile.is_none() {
            return self.inner.observe(agent);
        }
        self.views[agent].observation.clone()
    }

    fn oracle_subgoals(&self, agent: usize) -> Vec<Subgoal> {
        let mut subgoals = self.inner.oracle_subgoals(agent);
        if self.profile.is_none() {
            return subgoals;
        }
        // The oracle models *correct reasoning over what the agent can
        // perceive*: it cannot name an entity the degraded view dropped,
        // and it reads misread landmarks under their wrong names (which
        // then fail at the real seam — that is the fault's damage).
        let view = &self.views[agent];
        subgoals.retain(|sg| {
            !sg.referenced_entities()
                .iter()
                .any(|e| view.dropped.iter().any(|d| d == e))
        });
        for sg in &mut subgoals {
            for (from, to) in &view.renames {
                rename_entity(sg, from, to);
            }
        }
        subgoals
    }

    fn candidate_subgoals(&self, agent: usize) -> Vec<Subgoal> {
        if self.profile.is_none() {
            return self.inner.candidate_subgoals(agent);
        }
        self.views[agent].candidates.clone()
    }

    fn execute(&mut self, agent: usize, subgoal: &Subgoal, low: &mut LowLevel) -> ExecOutcome {
        if self.profile.is_none() {
            return self.inner.execute(agent, subgoal, low);
        }
        if !subgoal.is_idle() {
            if self.down_until[agent].is_some() {
                return ExecOutcome::failure("actuator offline");
            }
            if self.profile.silent_fail > 0.0 && self.rng.gen_bool(self.profile.silent_fail) {
                self.stats.silent_failures += 1;
                return ExecOutcome::failure(format!("nothing happened: {subgoal}"));
            }
            if self.profile.slip > 0.0 && self.rng.gen_bool(self.profile.slip) {
                let mut out = self.inner.execute(agent, subgoal, low);
                if out.completed {
                    out.completed = false;
                    out.made_progress = true;
                    out.note = format!("slipped mid-action: {}", out.note);
                    self.stats.partial_slips += 1;
                }
                return out;
            }
        }
        self.inner.execute(agent, subgoal, low)
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn progress(&self) -> f64 {
        self.inner.progress()
    }

    fn begin_step(&mut self, step: usize) {
        self.step = step;
        self.inner.begin_step(step);
        if self.profile.is_none() {
            return;
        }
        for agent in 0..self.inner.num_agents() {
            // Heal before draw: a window may end and a new one begin on the
            // same step boundary, exactly like the agent-fault plane.
            if let Some(until) = self.down_until[agent] {
                if step >= until {
                    self.down_until[agent] = None;
                }
            }
            if let Some(until) = self.stale_until[agent] {
                if step >= until {
                    self.stale_until[agent] = None;
                }
            }
            if self.down_until[agent].is_none()
                && self.profile.actuator_down > 0.0
                && self.rng.gen_bool(self.profile.actuator_down)
            {
                self.down_until[agent] = Some(step + self.profile.down_steps.max(1));
                self.stats.actuator_downtimes += 1;
            }
            if self.down_until[agent].is_some() {
                self.stats.actuator_down_steps += 1;
            }
            // While a frame is frozen the agent keeps seeing it; no fresh
            // perception draws happen for this agent this step.
            if self.stale_until[agent].is_some() {
                self.stats.stale_observations += 1;
                continue;
            }
            self.degrade_view(agent);
            if self.profile.stale > 0.0 && self.rng.gen_bool(self.profile.stale) {
                self.stale_until[agent] = Some(step + self.profile.stale_steps.max(1));
                self.stats.stale_observations += 1;
            }
        }
    }

    fn refresh_perception(&mut self, agent: usize) {
        self.inner.refresh_perception(agent);
        if self.profile.is_none() {
            return;
        }
        // A deliberate slow re-scan bypasses the transient perception fault:
        // thaw any frozen frame and rebuild the view from ground truth.
        // Intentionally draw-free, so recovery timing can never shift the
        // fault stream — recovery-on and -off runs face identical faults.
        self.stale_until[agent] = None;
        self.views[agent] = AgentView {
            observation: self.inner.observe(agent),
            candidates: self.inner.candidate_subgoals(agent),
            renames: Vec::new(),
            dropped: Vec::new(),
        };
    }

    fn env_fault_stats(&self) -> EnvFaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportEnv;
    use rand::RngCore;

    fn bare(seed: u64) -> TransportEnv {
        TransportEnv::new(TaskDifficulty::Easy, 2, seed)
    }

    fn oracle_or_explore(env: &impl Environment, agent: usize) -> Subgoal {
        env.oracle_subgoals(agent)
            .first()
            .cloned()
            .unwrap_or(Subgoal::Explore)
    }

    #[test]
    fn none_profile_is_strict_passthrough_with_zero_draws() {
        let mut plain = bare(7);
        let mut faulty = FaultyEnv::new(bare(7), EnvFaultProfile::none(), 7);
        let mut low_a = LowLevel::controller(3);
        let mut low_b = LowLevel::controller(3);
        for step in 0..40 {
            plain.begin_step(step);
            faulty.begin_step(step);
            for agent in 0..plain.num_agents() {
                assert_eq!(plain.observe(agent), faulty.observe(agent));
                assert_eq!(
                    plain.candidate_subgoals(agent),
                    faulty.candidate_subgoals(agent)
                );
                assert_eq!(plain.oracle_subgoals(agent), faulty.oracle_subgoals(agent));
                let sg = oracle_or_explore(&plain, agent);
                let a = plain.execute(agent, &sg, &mut low_a);
                let b = faulty.execute(agent, &sg, &mut low_b);
                assert_eq!(a, b);
            }
        }
        assert_eq!(plain.progress(), faulty.progress());
        assert!(faulty.env_fault_stats().is_quiet());
        // The dedicated RNG stream was never advanced: after swapping in a
        // live profile, its draws match a freshly seeded stream exactly.
        faulty.profile = EnvFaultProfile::uniform(0.5);
        let mut fresh = StdRng::seed_from_u64(7 ^ ENV_FAULT_SALT);
        for _ in 0..8 {
            assert_eq!(faulty.rng.next_u64(), fresh.next_u64());
        }
    }

    #[test]
    fn observation_and_affordances_see_the_same_degraded_world() {
        // Perception faults minus stale, so the wrapped env and a bare twin
        // stay in lockstep and every frame can be compared to ground truth.
        let profile = EnvFaultProfile {
            dropout: 0.4,
            phantom: 0.4,
            misread: 0.4,
            ..EnvFaultProfile::none()
        };
        let mut plain = bare(11);
        let mut faulty = FaultyEnv::new(bare(11), profile, 99);
        let mut low_a = LowLevel::controller(5);
        let mut low_b = LowLevel::controller(5);
        let mut faults_seen = 0u64;
        for step in 0..60 {
            plain.begin_step(step);
            faulty.begin_step(step);
            for agent in 0..plain.num_agents() {
                let truth = plain.observe(agent);
                let truth_aff = plain.affordances(agent);
                let degraded = faulty.observe(agent);
                let aff = faulty.affordances(agent);
                let view = &faulty.views[agent];
                for name in &view.dropped {
                    assert!(truth.sees(name), "dropped {name} was never real");
                    assert!(!degraded.sees(name), "dropped {name} still visible");
                    assert!(!aff.knows_entity(name), "dropped {name} still afforded");
                    faults_seen += 1;
                }
                for (from, to) in &view.renames {
                    assert!(!degraded.sees(from), "misread {from} still visible");
                    assert!(degraded.sees(to), "misread alias {to} not visible");
                    if truth_aff.knows_entity(from) {
                        assert!(aff.knows_entity(to), "misread alias {to} not afforded");
                        assert!(!aff.knows_entity(from), "misread {from} still afforded");
                    }
                    faults_seen += 1;
                }
                for entity in &degraded.visible {
                    if PHANTOMS.contains(&entity.name.as_str()) {
                        assert!(!truth.sees(&entity.name), "phantom leaked into truth");
                        assert!(
                            aff.knows_entity(&entity.name),
                            "phantom {} not afforded — the guardrail would catch it",
                            entity.name
                        );
                        faults_seen += 1;
                    }
                }
            }
            // Advance both worlds identically (no actuation faults) only
            // after every agent's step-start view has been checked — views
            // are cached at begin_step, so mid-step moves would otherwise
            // make ground truth drift away from the cached frame.
            for agent in 0..plain.num_agents() {
                let sg = oracle_or_explore(&plain, agent);
                plain.execute(agent, &sg, &mut low_a);
                faulty.execute(agent, &sg, &mut low_b);
            }
        }
        assert!(faults_seen > 0, "profile at 0.4 never fired in 60 steps");
        assert!(!faulty.env_fault_stats().is_quiet());
    }

    #[test]
    fn faulty_env_replays_bit_identically() {
        let run = |seed: u64| {
            let mut env = FaultyEnv::new(bare(13), EnvFaultProfile::uniform(0.25), seed);
            let mut low = LowLevel::controller(9);
            let mut log = String::new();
            for step in 0..50 {
                env.begin_step(step);
                for agent in 0..env.num_agents() {
                    let sg = oracle_or_explore(&env, agent);
                    let out = env.execute(agent, &sg, &mut low);
                    log.push_str(&format!("{step}/{agent} {sg} -> {out:?}\n"));
                }
            }
            format!("{log}{:?}", env.env_fault_stats())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn actuation_faults_fire_and_downtime_heals() {
        let mut env = FaultyEnv::new(bare(17), EnvFaultProfile::actuation(0.2), 21);
        let mut low = LowLevel::controller(1);
        let mut offline_failures = 0u64;
        let mut successes = 0u64;
        for step in 0..80 {
            env.begin_step(step);
            for agent in 0..env.num_agents() {
                let sg = oracle_or_explore(&env, agent);
                let out = env.execute(agent, &sg, &mut low);
                if out.note == "actuator offline" {
                    offline_failures += 1;
                }
                if out.completed {
                    successes += 1;
                }
            }
        }
        let stats = env.env_fault_stats();
        assert!(stats.silent_failures > 0);
        assert!(stats.actuator_downtimes > 0);
        assert!(stats.actuator_down_steps >= stats.actuator_downtimes);
        assert!(offline_failures > 0, "downtime never blocked an action");
        assert!(successes > 0, "downtime windows never healed");

        // Slips fire on actions that would have completed.
        let slippery = EnvFaultProfile {
            slip: 0.5,
            ..EnvFaultProfile::none()
        };
        let mut env = FaultyEnv::new(bare(19), slippery, 33);
        let mut low = LowLevel::controller(2);
        for step in 0..60 {
            env.begin_step(step);
            for agent in 0..env.num_agents() {
                let sg = oracle_or_explore(&env, agent);
                env.execute(agent, &sg, &mut low);
            }
        }
        assert!(env.env_fault_stats().partial_slips > 0);
    }

    #[test]
    fn refresh_perception_restores_ground_truth_view() {
        let profile = EnvFaultProfile {
            dropout: 0.9,
            phantom: 0.9,
            misread: 0.9,
            stale: 0.5,
            ..EnvFaultProfile::none()
        };
        let mut env = FaultyEnv::new(bare(23), profile, 55);
        let mut degraded_frames = 0;
        for step in 0..30 {
            env.begin_step(step);
            for agent in 0..env.num_agents() {
                if env.observe(agent) != env.inner.observe(agent) {
                    degraded_frames += 1;
                    env.refresh_perception(agent);
                    assert_eq!(env.observe(agent), env.inner.observe(agent));
                    assert_eq!(
                        env.candidate_subgoals(agent),
                        env.inner.candidate_subgoals(agent)
                    );
                    assert!(env.views[agent].renames.is_empty());
                    assert!(env.views[agent].dropped.is_empty());
                }
            }
        }
        assert!(degraded_frames > 0, "profile at 0.9 never degraded a frame");
    }

    #[test]
    fn stale_windows_freeze_the_frame_then_thaw() {
        let profile = EnvFaultProfile {
            stale: 1.0,
            stale_steps: 3,
            ..EnvFaultProfile::none()
        };
        let mut env = FaultyEnv::new(bare(29), profile, 77);
        env.begin_step(0);
        let frozen = env.observe(0);
        let mut low = LowLevel::controller(4);
        for step in 1..3 {
            // World moves on underneath; the served frame does not.
            let sg = oracle_or_explore(&env, 0);
            env.execute(0, &sg, &mut low);
            env.begin_step(step);
            assert_eq!(env.observe(0), frozen, "frame thawed early at {step}");
        }
        assert!(env.env_fault_stats().stale_observations >= 3);
    }

    #[test]
    fn profile_json_round_trips_exactly_and_validates() {
        let p = EnvFaultProfile {
            dropout: 0.05,
            phantom: 0.02,
            stale: 0.04,
            stale_steps: 3,
            misread: 0.03,
            silent_fail: 0.06,
            slip: 0.01,
            actuator_down: 0.02,
            down_steps: 4,
        };
        let back = EnvFaultProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
        assert_eq!(p.to_json().render_pretty(), back.to_json().render_pretty());

        assert!(EnvFaultProfile::none().validated().is_ok());
        assert!(EnvFaultProfile::none().is_none());
        assert!(!EnvFaultProfile::uniform(0.1).is_none());
        let nan = EnvFaultProfile {
            dropout: f64::NAN,
            ..EnvFaultProfile::none()
        };
        assert!(nan.validated().unwrap_err().contains("NaN"));
        let neg = EnvFaultProfile {
            slip: -0.1,
            ..EnvFaultProfile::none()
        };
        assert!(neg.validated().unwrap_err().contains("outside"));
        let big = EnvFaultProfile {
            phantom: 1.5,
            ..EnvFaultProfile::none()
        };
        assert!(EnvFaultProfile::from_json(&big.to_json()).is_err());
        let no_window = EnvFaultProfile {
            stale: 0.2,
            stale_steps: 0,
            ..EnvFaultProfile::none()
        };
        assert!(no_window.validated().is_err());
    }
}
