//! Grasp-candidate sampling and scoring — DaDu-E's AnyGrasp-style execution
//! back-end (Table II).
//!
//! Real grasp networks propose many candidate poses, score them, and execute
//! the best; failures trigger re-sampling. We reproduce that loop: the
//! number of candidates evaluated is the billable work, and grasp success
//! depends on object difficulty and the best candidate's score.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A candidate grasp pose with its predicted quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraspCandidate {
    /// Approach angle in radians.
    pub angle: f64,
    /// Gripper width in meters.
    pub width: f64,
    /// Predicted success score in `[0, 1]`.
    pub score: f64,
}

/// How hard an object is to grasp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraspTarget {
    /// Characteristic object size in meters (affects feasible widths).
    pub size: f64,
    /// Intrinsic difficulty in `[0, 1]` (slippery / awkward geometry).
    pub difficulty: f64,
}

impl GraspTarget {
    /// A typical household object.
    pub fn household() -> Self {
        GraspTarget {
            size: 0.08,
            difficulty: 0.25,
        }
    }

    /// A difficult, irregular object.
    pub fn awkward() -> Self {
        GraspTarget {
            size: 0.15,
            difficulty: 0.6,
        }
    }
}

/// Result of one grasp attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraspOutcome {
    /// Whether the object was secured.
    pub success: bool,
    /// Candidates evaluated (billable perception/scoring work).
    pub candidates_evaluated: usize,
    /// The executed candidate.
    pub executed: GraspCandidate,
}

/// AnyGrasp-style grasp planner.
#[derive(Debug, Clone)]
pub struct GraspPlanner {
    rng: StdRng,
    candidates_per_attempt: usize,
}

impl GraspPlanner {
    /// Creates a planner evaluating `candidates_per_attempt` poses per try.
    ///
    /// # Panics
    ///
    /// Panics if `candidates_per_attempt` is zero.
    pub fn new(seed: u64, candidates_per_attempt: usize) -> Self {
        assert!(candidates_per_attempt > 0, "need at least one candidate");
        GraspPlanner {
            rng: StdRng::seed_from_u64(seed ^ 0x6ea5),
            candidates_per_attempt,
        }
    }

    /// Planner with the default candidate budget (64, matching typical
    /// grasp-net proposal counts).
    pub fn with_seed(seed: u64) -> Self {
        Self::new(seed, 64)
    }

    /// Samples candidates for `target`, executes the best, and reports the
    /// outcome. Success probability is the best candidate's score damped by
    /// target difficulty.
    pub fn attempt(&mut self, target: GraspTarget) -> GraspOutcome {
        let mut best = GraspCandidate {
            angle: 0.0,
            width: target.size,
            score: 0.0,
        };
        for _ in 0..self.candidates_per_attempt {
            let angle = self
                .rng
                .gen_range(-std::f64::consts::PI..std::f64::consts::PI);
            let width = target.size * self.rng.gen_range(0.8..1.6);
            // Score favors near-perpendicular approaches and snug widths.
            let angle_fit = 1.0 - (angle.sin()).abs() * 0.3;
            let width_fit = 1.0 - ((width / target.size) - 1.1).abs().min(1.0) * 0.5;
            let noise = self.rng.gen_range(0.85..1.0);
            let score = (angle_fit * width_fit * noise).clamp(0.0, 1.0);
            if score > best.score {
                best = GraspCandidate {
                    angle,
                    width,
                    score,
                };
            }
        }
        let p_success = (best.score * (1.0 - 0.7 * target.difficulty)).clamp(0.02, 0.99);
        GraspOutcome {
            success: self.rng.gen_bool(p_success),
            candidates_evaluated: self.candidates_per_attempt,
            executed: best,
        }
    }

    /// Attempts up to `max_attempts` grasps, stopping at the first success.
    /// Total candidates evaluated accumulate across attempts.
    pub fn attempt_until(&mut self, target: GraspTarget, max_attempts: usize) -> GraspOutcome {
        let mut total = 0;
        let mut last = self.attempt(target);
        total += last.candidates_evaluated;
        let mut tries = 1;
        while !last.success && tries < max_attempts {
            last = self.attempt(target);
            total += last.candidates_evaluated;
            tries += 1;
        }
        last.candidates_evaluated = total;
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = GraspPlanner::with_seed(5);
        let mut b = GraspPlanner::with_seed(5);
        assert_eq!(
            a.attempt(GraspTarget::household()),
            b.attempt(GraspTarget::household())
        );
    }

    #[test]
    fn easy_objects_succeed_more_often() {
        let trials = 200;
        let mut planner = GraspPlanner::with_seed(1);
        let easy = (0..trials)
            .filter(|_| planner.attempt(GraspTarget::household()).success)
            .count();
        let mut planner = GraspPlanner::with_seed(1);
        let hard = (0..trials)
            .filter(|_| planner.attempt(GraspTarget::awkward()).success)
            .count();
        assert!(
            easy > hard,
            "household ({easy}/{trials}) should beat awkward ({hard}/{trials})"
        );
    }

    #[test]
    fn candidates_counted_across_retries() {
        let mut planner = GraspPlanner::new(3, 16);
        let out = planner.attempt_until(GraspTarget::awkward(), 5);
        assert!(out.candidates_evaluated >= 16);
        assert_eq!(out.candidates_evaluated % 16, 0);
        assert!(out.candidates_evaluated <= 5 * 16);
    }

    #[test]
    fn best_candidate_has_positive_score() {
        let mut planner = GraspPlanner::with_seed(2);
        let out = planner.attempt(GraspTarget::household());
        assert!(out.executed.score > 0.0);
        assert!(out.executed.score <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_candidates_rejected() {
        let _ = GraspPlanner::new(0, 0);
    }

    #[test]
    fn retry_loop_usually_succeeds_eventually() {
        let mut planner = GraspPlanner::with_seed(9);
        let successes = (0..50)
            .filter(|_| planner.attempt_until(GraspTarget::household(), 6).success)
            .count();
        assert!(successes >= 45, "only {successes}/50 succeeded in 6 tries");
    }
}
