//! # embodied-exec
//!
//! Low-level execution substrate: the geometric planners, policy networks,
//! and actuation models the paper's Table II lists as "execution modules"
//! (A-star, RRT, MLP, AnyGrasp, action lists).
//!
//! Unlike the LLM modules — whose latency is analytic — these planners do
//! *real* work (node expansions, tree growth, forward passes) and report it,
//! so execution cost in the figures is measured rather than assumed:
//!
//! * [`astar`] over any [`NavGrid`] — CoELA/COHERENT navigation;
//! * [`plan_rrt`] (RRT / RRT*) in a continuous [`Workspace`] — RoCo and
//!   COHERENT arm trajectories;
//! * [`MlpPolicy`] — EmbodiedGPT's low-level control head;
//! * [`GraspPlanner`] — DaDu-E's AnyGrasp-style grasp loop;
//! * [`Actuator`] — retrying primitive execution;
//! * [`latency`] — work → simulated-time conversion constants.
//!
//! ```
//! use embodied_exec::{astar, latency, Cell, DenseGrid};
//!
//! let grid = DenseGrid::open(12, 12);
//! let plan = astar(&grid, Cell::new(0, 0), Cell::new(11, 11)).unwrap();
//! let compute = latency::astar_compute(plan.nodes_expanded);
//! let motion = latency::grid_motion(plan.length());
//! assert!(motion > compute); // moving dominates planning on easy maps
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod astar;
mod controller;
mod grasp;
mod grid;
pub mod latency;
mod mlp;
mod rrt;

pub use astar::{astar, GridPlan, PlanError};
pub use controller::{ActuationResult, Actuator};
pub use grasp::{GraspCandidate, GraspOutcome, GraspPlanner, GraspTarget};
pub use grid::{Cell, DenseGrid, NavGrid};
pub use mlp::MlpPolicy;
pub use rrt::{
    plan_rrt, plan_rrt_connect, smooth_trajectory, Circle, Point, RrtError, RrtParams, Trajectory,
    Workspace,
};
