//! Primitive actuation with stochastic failure and retry — the glue between
//! a planned motion and the environment actually changing.
//!
//! The paper notes that "multiple executions [are] typically required to
//! complete a single planned step"; the [`Actuator`] reproduces that by
//! failing primitives with a configurable probability and retrying, billing
//! time for every attempt.

use embodied_profiler::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of driving one primitive to completion (or giving up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActuationResult {
    /// Whether the primitive eventually succeeded.
    pub success: bool,
    /// Attempts made (≥ 1).
    pub attempts: usize,
    /// Total simulated time across all attempts.
    pub total_time: SimDuration,
}

/// A seeded actuator with a per-attempt success probability.
#[derive(Debug, Clone)]
pub struct Actuator {
    rng: StdRng,
    success_prob: f64,
    max_attempts: usize,
}

impl Actuator {
    /// Creates an actuator.
    ///
    /// `success_prob` is clamped to `[0.01, 1.0]`; `max_attempts` is raised
    /// to at least 1.
    pub fn new(seed: u64, success_prob: f64, max_attempts: usize) -> Self {
        Actuator {
            rng: StdRng::seed_from_u64(seed ^ 0xac7a),
            success_prob: success_prob.clamp(0.01, 1.0),
            max_attempts: max_attempts.max(1),
        }
    }

    /// A reliable actuator (97% per attempt, up to 3 attempts).
    pub fn reliable(seed: u64) -> Self {
        Self::new(seed, 0.97, 3)
    }

    /// A flaky actuator for failure-injection studies.
    pub fn flaky(seed: u64) -> Self {
        Self::new(seed, 0.6, 4)
    }

    /// Per-attempt success probability.
    pub fn success_prob(&self) -> f64 {
        self.success_prob
    }

    /// Drives a primitive whose single attempt takes `attempt_time`,
    /// retrying on failure up to the attempt budget.
    pub fn drive(&mut self, attempt_time: SimDuration) -> ActuationResult {
        let mut total = SimDuration::ZERO;
        for attempt in 1..=self.max_attempts {
            total += attempt_time;
            if self.rng.gen_bool(self.success_prob) {
                return ActuationResult {
                    success: true,
                    attempts: attempt,
                    total_time: total,
                };
            }
        }
        ActuationResult {
            success: false,
            attempts: self.max_attempts,
            total_time: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn perfect_actuator_needs_one_attempt() {
        let mut a = Actuator::new(0, 1.0, 5);
        let r = a.drive(ms(100));
        assert!(r.success);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.total_time, ms(100));
    }

    #[test]
    fn time_billed_for_every_attempt() {
        let mut a = Actuator::new(0, 0.01, 3);
        // With p=0.01 a triple failure is overwhelmingly likely; find one.
        let mut saw_triple_failure = false;
        for _ in 0..20 {
            let r = a.drive(ms(50));
            assert_eq!(r.total_time, ms(50) * r.attempts as u64);
            if !r.success {
                assert_eq!(r.attempts, 3);
                saw_triple_failure = true;
            }
        }
        assert!(saw_triple_failure);
    }

    #[test]
    fn flaky_retries_more_than_reliable() {
        let n = 300;
        let mut rel = Actuator::reliable(7);
        let rel_attempts: usize = (0..n).map(|_| rel.drive(ms(1)).attempts).sum();
        let mut flk = Actuator::flaky(7);
        let flk_attempts: usize = (0..n).map(|_| flk.drive(ms(1)).attempts).sum();
        assert!(flk_attempts > rel_attempts);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut a = Actuator::flaky(seed);
            (0..10).map(|_| a.drive(ms(10))).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn clamps_degenerate_inputs() {
        let a = Actuator::new(0, -5.0, 0);
        assert!((a.success_prob() - 0.01).abs() < 1e-12);
        let mut a = Actuator::new(0, 2.0, 0);
        assert!(a.drive(ms(1)).success);
    }
}
