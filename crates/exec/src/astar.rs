//! A* grid path planning — the low-level navigator used by CoELA, COHERENT
//! and the grid environments (paper Table II "A-star" execution modules).
//!
//! The planner reports the work it did (nodes expanded), which the latency
//! model converts into simulated compute time; this is what makes execution
//! a *measured* bottleneck rather than an assumed one.

use crate::grid::{Cell, NavGrid};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A successful plan: the path and the work expended finding it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridPlan {
    /// Cells from start to goal inclusive.
    pub path: Vec<Cell>,
    /// Nodes popped from the open list.
    pub nodes_expanded: usize,
}

impl GridPlan {
    /// Number of moves along the path.
    pub fn length(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Why planning failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanError {
    /// Start or goal cell is not passable.
    InvalidEndpoint,
    /// Search exhausted without reaching the goal.
    NoPath {
        /// Nodes expanded before giving up (still billed as compute).
        nodes_expanded: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InvalidEndpoint => f.write_str("start or goal cell is impassable"),
            PlanError::NoPath { nodes_expanded } => {
                write!(f, "no path exists (expanded {nodes_expanded} nodes)")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans a shortest 4-connected path from `start` to `goal`.
///
/// # Errors
///
/// * [`PlanError::InvalidEndpoint`] if either endpoint is impassable;
/// * [`PlanError::NoPath`] if the goal is unreachable.
///
/// ```
/// use embodied_exec::{astar, Cell, DenseGrid};
///
/// let mut grid = DenseGrid::open(10, 10);
/// grid.block_vwall(5, 0, 8); // wall with a gap at y=9
/// let plan = astar(&grid, Cell::new(0, 0), Cell::new(9, 0)).unwrap();
/// assert_eq!(plan.path.first(), Some(&Cell::new(0, 0)));
/// assert_eq!(plan.path.last(), Some(&Cell::new(9, 0)));
/// assert!(plan.length() > 9); // forced around the wall
/// ```
pub fn astar(grid: &dyn NavGrid, start: Cell, goal: Cell) -> Result<GridPlan, PlanError> {
    if !grid.passable(start) || !grid.passable(goal) {
        return Err(PlanError::InvalidEndpoint);
    }
    if start == goal {
        return Ok(GridPlan {
            path: vec![start],
            nodes_expanded: 0,
        });
    }

    // Open list keyed by (f, g) with deterministic tie-breaking on the cell.
    let mut open: BinaryHeap<Reverse<(u32, u32, i32, i32)>> = BinaryHeap::new();
    let mut g_score: HashMap<Cell, u32> = HashMap::new();
    let mut came_from: HashMap<Cell, Cell> = HashMap::new();
    let mut expanded = 0usize;

    g_score.insert(start, 0);
    open.push(Reverse((start.manhattan(goal), 0, start.x, start.y)));

    while let Some(Reverse((_, g, x, y))) = open.pop() {
        let current = Cell::new(x, y);
        if g_score.get(&current).copied() != Some(g) {
            continue; // stale entry
        }
        expanded += 1;
        if current == goal {
            let mut path = vec![current];
            let mut cur = current;
            while let Some(&prev) = came_from.get(&cur) {
                path.push(prev);
                cur = prev;
            }
            path.reverse();
            return Ok(GridPlan {
                path,
                nodes_expanded: expanded,
            });
        }
        for next in current.neighbors4() {
            if !grid.passable(next) {
                continue;
            }
            let tentative = g + 1;
            if g_score.get(&next).is_none_or(|&old| tentative < old) {
                g_score.insert(next, tentative);
                came_from.insert(next, current);
                open.push(Reverse((
                    tentative + next.manhattan(goal),
                    tentative,
                    next.x,
                    next.y,
                )));
            }
        }
    }
    Err(PlanError::NoPath {
        nodes_expanded: expanded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::DenseGrid;

    #[test]
    fn straight_line_on_open_grid() {
        let grid = DenseGrid::open(20, 20);
        let plan = astar(&grid, Cell::new(0, 0), Cell::new(10, 0)).unwrap();
        assert_eq!(plan.length(), 10);
    }

    #[test]
    fn path_is_connected_and_passable() {
        let mut grid = DenseGrid::open(15, 15);
        grid.block_vwall(7, 2, 14);
        let plan = astar(&grid, Cell::new(0, 7), Cell::new(14, 7)).unwrap();
        for pair in plan.path.windows(2) {
            assert_eq!(pair[0].manhattan(pair[1]), 1, "path must be connected");
        }
        for &c in &plan.path {
            assert!(grid.passable(c));
        }
    }

    #[test]
    fn optimal_length_around_wall() {
        // Wall at x=5 except y=0: detour forced through the top row.
        let mut grid = DenseGrid::open(11, 11);
        grid.block_vwall(5, 1, 10);
        let plan = astar(&grid, Cell::new(0, 10), Cell::new(10, 10)).unwrap();
        // Manual shortest: up 10, across 10, down 10 = 30.
        assert_eq!(plan.length(), 30);
    }

    #[test]
    fn same_cell_plan_is_trivial() {
        let grid = DenseGrid::open(5, 5);
        let plan = astar(&grid, Cell::new(2, 2), Cell::new(2, 2)).unwrap();
        assert_eq!(plan.path, vec![Cell::new(2, 2)]);
        assert_eq!(plan.nodes_expanded, 0);
    }

    #[test]
    fn unreachable_goal_reports_work() {
        let mut grid = DenseGrid::open(10, 10);
        // Box in the goal.
        for c in Cell::new(8, 8).neighbors4() {
            grid.block(c);
        }
        match astar(&grid, Cell::new(0, 0), Cell::new(8, 8)) {
            Err(PlanError::NoPath { nodes_expanded }) => assert!(nodes_expanded > 0),
            other => panic!("expected NoPath, got {other:?}"),
        }
    }

    #[test]
    fn blocked_endpoint_rejected() {
        let mut grid = DenseGrid::open(5, 5);
        grid.block(Cell::new(4, 4));
        assert_eq!(
            astar(&grid, Cell::new(0, 0), Cell::new(4, 4)).unwrap_err(),
            PlanError::InvalidEndpoint
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut grid = DenseGrid::open(30, 30);
        grid.block_vwall(10, 0, 20);
        grid.block_vwall(20, 10, 29);
        let a = astar(&grid, Cell::new(0, 0), Cell::new(29, 29)).unwrap();
        let b = astar(&grid, Cell::new(0, 0), Cell::new(29, 29)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn harder_maps_expand_more_nodes() {
        let open_grid = DenseGrid::open(25, 25);
        let easy = astar(&open_grid, Cell::new(0, 0), Cell::new(24, 0)).unwrap();
        let mut maze = DenseGrid::open(25, 25);
        maze.block_vwall(6, 0, 22);
        maze.block_vwall(12, 2, 24);
        maze.block_vwall(18, 0, 22);
        let hard = astar(&maze, Cell::new(0, 0), Cell::new(24, 0)).unwrap();
        assert!(hard.nodes_expanded > easy.nodes_expanded);
    }
}
