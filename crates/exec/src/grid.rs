//! Grid abstractions shared by the discrete planners.

use serde::{Deserialize, Serialize};

/// An integer cell coordinate on a navigation grid.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cell {
    /// Column, 0-based.
    pub x: i32,
    /// Row, 0-based.
    pub y: i32,
}

impl Cell {
    /// Creates a cell.
    pub const fn new(x: i32, y: i32) -> Self {
        Cell { x, y }
    }

    /// Manhattan distance to another cell — the admissible A* heuristic for
    /// 4-connected grids.
    pub fn manhattan(self, other: Cell) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The four von-Neumann neighbours.
    pub fn neighbors4(self) -> [Cell; 4] {
        [
            Cell::new(self.x + 1, self.y),
            Cell::new(self.x - 1, self.y),
            Cell::new(self.x, self.y + 1),
            Cell::new(self.x, self.y - 1),
        ]
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A planner's view of a grid: bounds plus passability.
///
/// Environments implement this so the A* planner stays independent of any
/// particular world representation.
pub trait NavGrid {
    /// Grid width in cells.
    fn width(&self) -> i32;
    /// Grid height in cells.
    fn height(&self) -> i32;
    /// Whether an agent may occupy `cell`.
    fn passable(&self, cell: Cell) -> bool;

    /// Whether `cell` lies within bounds.
    fn in_bounds(&self, cell: Cell) -> bool {
        (0..self.width()).contains(&cell.x) && (0..self.height()).contains(&cell.y)
    }
}

/// A simple owned grid for tests and standalone use: everything passable
/// except listed blocked cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseGrid {
    width: i32,
    height: i32,
    blocked: std::collections::HashSet<Cell>,
}

impl DenseGrid {
    /// An open grid of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is non-positive.
    pub fn open(width: i32, height: i32) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        DenseGrid {
            width,
            height,
            blocked: Default::default(),
        }
    }

    /// Marks a cell impassable.
    pub fn block(&mut self, cell: Cell) -> &mut Self {
        self.blocked.insert(cell);
        self
    }

    /// Marks a vertical wall segment `x, y0..=y1` impassable.
    pub fn block_vwall(&mut self, x: i32, y0: i32, y1: i32) -> &mut Self {
        for y in y0..=y1 {
            self.blocked.insert(Cell::new(x, y));
        }
        self
    }

    /// Number of blocked cells.
    pub fn blocked_count(&self) -> usize {
        self.blocked.len()
    }
}

impl NavGrid for DenseGrid {
    fn width(&self) -> i32 {
        self.width
    }
    fn height(&self) -> i32 {
        self.height
    }
    fn passable(&self, cell: Cell) -> bool {
        self.in_bounds(cell) && !self.blocked.contains(&cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(Cell::new(0, 0).manhattan(Cell::new(3, 4)), 7);
        assert_eq!(Cell::new(-2, 5).manhattan(Cell::new(2, 5)), 4);
        assert_eq!(Cell::new(1, 1).manhattan(Cell::new(1, 1)), 0);
    }

    #[test]
    fn neighbors_are_adjacent() {
        let c = Cell::new(5, 5);
        for n in c.neighbors4() {
            assert_eq!(c.manhattan(n), 1);
        }
    }

    #[test]
    fn dense_grid_bounds_and_blocking() {
        let mut g = DenseGrid::open(10, 8);
        assert!(g.passable(Cell::new(0, 0)));
        assert!(!g.passable(Cell::new(10, 0)));
        assert!(!g.passable(Cell::new(-1, 3)));
        g.block(Cell::new(2, 2));
        assert!(!g.passable(Cell::new(2, 2)));
        assert_eq!(g.blocked_count(), 1);
    }

    #[test]
    fn vwall_blocks_range() {
        let mut g = DenseGrid::open(10, 10);
        g.block_vwall(4, 0, 9);
        for y in 0..10 {
            assert!(!g.passable(Cell::new(4, y)));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_grid_rejected() {
        let _ = DenseGrid::open(0, 5);
    }
}
