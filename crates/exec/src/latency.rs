//! Conversion from planner *work* (nodes, iterations, FLOPs, candidates) to
//! simulated compute time, plus actuation-time models.
//!
//! The paper bills execution latency on an Intel i7 CPU; these constants are
//! calibrated so the execution shares of Fig. 2a land where the paper
//! reports them (RoCo ≈49%, DaDu-E ≈38%, EmbodiedGPT ≈24%, grid A* systems
//! smaller but not negligible).

use embodied_profiler::SimDuration;

/// Compute time of an A* run that expanded `nodes` nodes.
pub fn astar_compute(nodes: usize) -> SimDuration {
    SimDuration::from_millis(20) + SimDuration::from_micros(50) * nodes as u64
}

/// Time for a mobile base to traverse `cells` grid cells.
pub fn grid_motion(cells: usize) -> SimDuration {
    SimDuration::from_millis(300) * cells as u64
}

/// Compute time of an RRT run that consumed `iterations` iterations.
pub fn rrt_compute(iterations: usize) -> SimDuration {
    SimDuration::from_millis(600) + SimDuration::from_micros(2_500) * iterations as u64
}

/// Time for an arm to sweep a trajectory of `length_m` meters.
pub fn arm_motion(length_m: f64) -> SimDuration {
    SimDuration::from_secs_f64(length_m.max(0.0) * 6.0)
}

/// Compute time of an MLP forward pass of `flops` FLOPs (plus dispatch
/// overhead; the network itself is tiny).
pub fn mlp_compute(flops: usize) -> SimDuration {
    SimDuration::from_millis(1) + SimDuration::from_micros((flops / 500_000).max(1) as u64)
}

/// Time to execute one low-level skill primitive (gripper close, knob turn…).
pub fn skill_actuation() -> SimDuration {
    SimDuration::from_millis(1_200)
}

/// Compute time of grasp-candidate scoring for `candidates` proposals.
pub fn grasp_compute(candidates: usize) -> SimDuration {
    SimDuration::from_millis(150) + SimDuration::from_millis(18) * candidates as u64
}

/// Time for the gripper to physically attempt one grasp.
pub fn grasp_actuation() -> SimDuration {
    SimDuration::from_millis(2_500)
}

/// Time to execute one symbolic action-list primitive (the "Action list"
/// executors of JARVIS-1, MindAgent, CMAS, …).
pub fn action_list_step() -> SimDuration {
    SimDuration::from_millis(900)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astar_scales_with_nodes() {
        assert!(astar_compute(10_000) > astar_compute(100));
        // A big search on the order of tens of thousands of nodes costs
        // O(seconds) — visible in a 10–30 s step but not dominant.
        let big = astar_compute(40_000).as_secs_f64();
        assert!((1.0..5.0).contains(&big), "{big}");
    }

    #[test]
    fn rrt_is_expensive_enough_to_bottleneck() {
        // A 4000-iteration RRT plus ~2 m arm sweep should approach the
        // multi-second territory that makes RoCo execution-bound.
        let total = (rrt_compute(4_000) + arm_motion(2.0)).as_secs_f64();
        assert!((10.0..25.0).contains(&total), "{total}");
    }

    #[test]
    fn mlp_is_cheap() {
        assert!(mlp_compute(1_000_000).as_millis() < 10);
    }

    #[test]
    fn grasp_attempt_costs_seconds() {
        let total = (grasp_compute(64) + grasp_actuation()).as_secs_f64();
        assert!((2.0..8.0).contains(&total), "{total}");
    }

    #[test]
    fn negative_arm_length_is_free_not_negative() {
        assert_eq!(arm_motion(-1.0), SimDuration::ZERO);
    }
}
