//! A small fixed-weight MLP policy — EmbodiedGPT's low-level execution
//! network (Table II lists "MLP" as its execution module).
//!
//! The network is real (deterministic pseudo-random weights, tanh hidden
//! layers, argmax head) so its compute cost can be billed from actual FLOPs,
//! and its behaviour is a pure function of the observation features.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A feed-forward policy network with one hidden layer per entry of
/// `hidden`, tanh activations, and a linear action head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpPolicy {
    layers: Vec<Layer>,
    input_dim: usize,
    action_dim: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    weights: Vec<Vec<f64>>, // [out][in]
    bias: Vec<f64>,
}

impl Layer {
    fn random(rng: &mut StdRng, in_dim: usize, out_dim: usize) -> Self {
        let scale = (2.0 / in_dim as f64).sqrt();
        Layer {
            weights: (0..out_dim)
                .map(|_| (0..in_dim).map(|_| rng.gen_range(-scale..scale)).collect())
                .collect(),
            bias: (0..out_dim).map(|_| rng.gen_range(-0.05..0.05)).collect(),
        }
    }

    fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.bias)
            .map(|(row, b)| row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>() + b)
            .collect()
    }

    fn flops(&self) -> usize {
        2 * self.weights.len() * self.weights.first().map_or(0, Vec::len)
    }
}

impl MlpPolicy {
    /// Builds a policy with deterministic weights derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `action_dim` is zero.
    pub fn new(input_dim: usize, hidden: &[usize], action_dim: usize, seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        assert!(action_dim > 0, "action_dim must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1217);
        let mut dims = vec![input_dim];
        dims.extend_from_slice(hidden);
        dims.push(action_dim);
        let layers = dims
            .windows(2)
            .map(|w| Layer::random(&mut rng, w[0], w[1]))
            .collect();
        MlpPolicy {
            layers,
            input_dim,
            action_dim,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of discrete actions.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Total multiply-accumulate FLOPs per forward pass.
    pub fn flops(&self) -> usize {
        self.layers.iter().map(Layer::flops).sum()
    }

    /// Runs a forward pass and returns the raw action scores.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.input_dim()`.
    pub fn scores(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.input_dim, "feature dimension mismatch");
        let mut x = features.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(&x);
            if i != last {
                for v in &mut x {
                    *v = v.tanh();
                }
            }
        }
        x
    }

    /// Argmax action for the given features (ties resolved to the lowest
    /// index for determinism).
    pub fn act(&self, features: &[f64]) -> usize {
        let scores = self.scores(features);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_construction_and_inference() {
        let a = MlpPolicy::new(8, &[16, 16], 4, 99);
        let b = MlpPolicy::new(8, &[16, 16], 4, 99);
        let feats: Vec<f64> = (0..8).map(|i| i as f64 * 0.1).collect();
        assert_eq!(a.scores(&feats), b.scores(&feats));
        assert_eq!(a.act(&feats), b.act(&feats));
    }

    #[test]
    fn different_seeds_give_different_policies() {
        let a = MlpPolicy::new(8, &[16], 4, 1);
        let b = MlpPolicy::new(8, &[16], 4, 2);
        let feats = vec![0.5; 8];
        assert_ne!(a.scores(&feats), b.scores(&feats));
    }

    #[test]
    fn flops_counts_all_layers() {
        let p = MlpPolicy::new(10, &[32], 4, 0);
        // 2*(32*10) + 2*(4*32)
        assert_eq!(p.flops(), 640 + 256);
    }

    #[test]
    fn action_in_range() {
        let p = MlpPolicy::new(6, &[12, 12], 5, 7);
        for i in 0..50 {
            let feats: Vec<f64> = (0..6).map(|j| ((i * j) as f64).sin()).collect();
            assert!(p.act(&feats) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_feature_length_panics() {
        let p = MlpPolicy::new(4, &[8], 2, 0);
        let _ = p.scores(&[1.0, 2.0]);
    }

    #[test]
    fn no_hidden_layers_is_linear_policy() {
        let p = MlpPolicy::new(3, &[], 2, 5);
        assert_eq!(p.flops(), 2 * 2 * 3);
        assert!(p.act(&[1.0, 0.0, -1.0]) < 2);
    }
}
