//! RRT and RRT* sampling-based motion planners — the arm-trajectory
//! executors behind RoCo and COHERENT (paper Table II "RRT").
//!
//! Planning happens in a 2-D workspace with circular obstacles (other arms,
//! objects, keep-out zones). Iteration counts are reported so the latency
//! model can bill real compute, which is what pushes RoCo's execution share
//! to ~49% in Fig. 2a.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A point in the continuous workspace (meters).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation toward `other` by fraction `t`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

/// A circular obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center.
    pub center: Point,
    /// Radius (meters).
    pub radius: f64,
}

/// The planning workspace: an axis-aligned rectangle with circle obstacles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workspace {
    /// Width (meters).
    pub width: f64,
    /// Height (meters).
    pub height: f64,
    /// Obstacles to avoid.
    pub obstacles: Vec<Circle>,
}

impl Workspace {
    /// An empty workspace.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is non-positive or non-finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "workspace dimensions must be positive and finite"
        );
        Workspace {
            width,
            height,
            obstacles: Vec::new(),
        }
    }

    /// Adds a circular obstacle.
    pub fn with_obstacle(mut self, center: Point, radius: f64) -> Self {
        self.obstacles.push(Circle { center, radius });
        self
    }

    /// Whether `p` is inside bounds and outside every obstacle.
    pub fn free(&self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x)
            && (0.0..=self.height).contains(&p.y)
            && self.obstacles.iter().all(|o| p.dist(o.center) > o.radius)
    }

    /// Whether the straight segment `a`→`b` stays free (checked at 2 cm
    /// resolution).
    pub fn segment_free(&self, a: Point, b: Point) -> bool {
        let steps = (a.dist(b) / 0.02).ceil().max(1.0) as usize;
        (0..=steps).all(|i| self.free(a.lerp(b, i as f64 / steps as f64)))
    }
}

/// RRT tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrtParams {
    /// Maximum tree-growth iterations before giving up.
    pub max_iterations: usize,
    /// Extension step size (meters).
    pub step_size: f64,
    /// Probability of sampling the goal directly (goal bias).
    pub goal_bias: f64,
    /// Distance at which the goal counts as reached.
    pub goal_tolerance: f64,
    /// RRT*: rewiring neighbourhood radius; `None` for plain RRT.
    pub rewire_radius: Option<f64>,
}

impl Default for RrtParams {
    fn default() -> Self {
        RrtParams {
            max_iterations: 4_000,
            step_size: 0.15,
            goal_bias: 0.08,
            goal_tolerance: 0.12,
            rewire_radius: None,
        }
    }
}

impl RrtParams {
    /// Parameters for RRT* with a sensible rewire radius.
    pub fn star() -> Self {
        RrtParams {
            rewire_radius: Some(0.45),
            ..Default::default()
        }
    }
}

/// A successful trajectory plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Waypoints from start to (near-)goal.
    pub waypoints: Vec<Point>,
    /// Tree-growth iterations consumed.
    pub iterations: usize,
    /// Total path length (meters).
    pub length: f64,
}

/// Why trajectory planning failed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RrtError {
    /// Start or goal lies inside an obstacle or out of bounds.
    InvalidEndpoint,
    /// Iteration budget exhausted without reaching the goal.
    Exhausted {
        /// Iterations consumed (billed as compute by the latency model).
        iterations: usize,
    },
}

impl std::fmt::Display for RrtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RrtError::InvalidEndpoint => f.write_str("start or goal is not in free space"),
            RrtError::Exhausted { iterations } => {
                write!(f, "rrt exhausted after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for RrtError {}

/// Plans a collision-free trajectory with (seeded) RRT or RRT*.
///
/// # Errors
///
/// * [`RrtError::InvalidEndpoint`] if `start`/`goal` are not in free space;
/// * [`RrtError::Exhausted`] if no path was found within the budget.
///
/// ```
/// use embodied_exec::{plan_rrt, Point, RrtParams, Workspace};
///
/// let ws = Workspace::new(4.0, 4.0).with_obstacle(Point::new(2.0, 2.0), 0.6);
/// let traj = plan_rrt(&ws, Point::new(0.2, 0.2), Point::new(3.8, 3.8),
///                     RrtParams::default(), 42).unwrap();
/// assert!(traj.length >= Point::new(0.2, 0.2).dist(Point::new(3.8, 3.8)));
/// ```
pub fn plan_rrt(
    ws: &Workspace,
    start: Point,
    goal: Point,
    params: RrtParams,
    seed: u64,
) -> Result<Trajectory, RrtError> {
    if !ws.free(start) || !ws.free(goal) {
        return Err(RrtError::InvalidEndpoint);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7c7);
    let mut nodes: Vec<Point> = vec![start];
    let mut parents: Vec<usize> = vec![0];
    let mut costs: Vec<f64> = vec![0.0];

    for iter in 1..=params.max_iterations {
        let sample = if rng.gen_bool(params.goal_bias) {
            goal
        } else {
            Point::new(
                rng.gen_range(0.0..=ws.width),
                rng.gen_range(0.0..=ws.height),
            )
        };
        // Nearest node.
        let (nearest_idx, nearest) = nodes
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| {
                a.1.dist(sample)
                    .partial_cmp(&b.1.dist(sample))
                    .expect("distances are finite")
            })
            .expect("tree is never empty");
        let d = nearest.dist(sample);
        let new = if d <= params.step_size {
            sample
        } else {
            nearest.lerp(sample, params.step_size / d)
        };
        if !ws.segment_free(nearest, new) {
            continue;
        }

        let mut parent = nearest_idx;
        let mut cost = costs[nearest_idx] + nearest.dist(new);

        // RRT*: choose the cheapest collision-free parent in the radius and
        // rewire neighbours through the new node when beneficial.
        if let Some(radius) = params.rewire_radius {
            for (i, &node) in nodes.iter().enumerate() {
                let dist = node.dist(new);
                if dist <= radius && ws.segment_free(node, new) {
                    let candidate = costs[i] + dist;
                    if candidate < cost {
                        cost = candidate;
                        parent = i;
                    }
                }
            }
        }

        nodes.push(new);
        parents.push(parent);
        costs.push(cost);
        let new_idx = nodes.len() - 1;

        if let Some(radius) = params.rewire_radius {
            for i in 0..new_idx {
                let node = nodes[i];
                let dist = node.dist(new);
                if dist <= radius && costs[new_idx] + dist < costs[i] && ws.segment_free(new, node)
                {
                    parents[i] = new_idx;
                    costs[i] = costs[new_idx] + dist;
                }
            }
        }

        if new.dist(goal) <= params.goal_tolerance && ws.segment_free(new, goal) {
            let mut waypoints = vec![goal, new];
            let mut cur = new_idx;
            while cur != 0 {
                cur = parents[cur];
                waypoints.push(nodes[cur]);
            }
            waypoints.reverse();
            let length = waypoints.windows(2).map(|w| w[0].dist(w[1])).sum();
            return Ok(Trajectory {
                waypoints,
                iterations: iter,
                length,
            });
        }
    }
    Err(RrtError::Exhausted {
        iterations: params.max_iterations,
    })
}

/// Plans with bidirectional RRT-Connect: two trees grow toward each other
/// with greedy extension, which typically finds feasible paths in far fewer
/// iterations than single-tree RRT (at some cost in path quality).
///
/// # Errors
///
/// Same contract as [`plan_rrt`].
pub fn plan_rrt_connect(
    ws: &Workspace,
    start: Point,
    goal: Point,
    params: RrtParams,
    seed: u64,
) -> Result<Trajectory, RrtError> {
    if !ws.free(start) || !ws.free(goal) {
        return Err(RrtError::InvalidEndpoint);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0c7);
    // Tree storage: nodes + parent indices, one per side.
    let mut trees = [(vec![start], vec![0usize]), (vec![goal], vec![0usize])];
    let mut active = 0usize;

    for iter in 1..=params.max_iterations {
        let sample = Point::new(
            rng.gen_range(0.0..=ws.width),
            rng.gen_range(0.0..=ws.height),
        );
        // Extend the active tree one step toward the sample.
        let Some(new_idx) = extend(ws, &mut trees[active], sample, params.step_size) else {
            active = 1 - active;
            continue;
        };
        let new_point = trees[active].0[new_idx];
        // Greedily connect the other tree toward the new node.
        let other = 1 - active;
        let mut connected: Option<usize> = None;
        while let Some(idx) = extend(ws, &mut trees[other], new_point, params.step_size) {
            if trees[other].0[idx].dist(new_point) <= params.goal_tolerance {
                connected = Some(idx);
                break;
            }
        }
        if let Some(meet_other) = connected {
            // Stitch: start-tree path (reversed) + goal-tree path.
            let (start_side, start_meet, goal_side, goal_meet) = if active == 0 {
                (&trees[0], new_idx, &trees[1], meet_other)
            } else {
                (&trees[0], meet_other, &trees[1], new_idx)
            };
            let mut head = walk_to_root(start_side, start_meet);
            head.reverse(); // root(start) … meet
            let tail = walk_to_root(goal_side, goal_meet); // meet … root(goal)
            head.extend(tail);
            let length = head.windows(2).map(|w| w[0].dist(w[1])).sum();
            return Ok(Trajectory {
                waypoints: head,
                iterations: iter,
                length,
            });
        }
        active = other;
    }
    Err(RrtError::Exhausted {
        iterations: params.max_iterations,
    })
}

/// Shortcut-smooths a trajectory: repeatedly tries to replace the section
/// between two random waypoints with a straight segment when it is
/// collision-free — the standard post-processing pass after sampling-based
/// planning. Returns the smoothed trajectory (iterations are carried over
/// and the smoothing attempts added, so compute stays billable).
pub fn smooth_trajectory(
    ws: &Workspace,
    traj: &Trajectory,
    attempts: usize,
    seed: u64,
) -> Trajectory {
    let mut waypoints = traj.waypoints.clone();
    if waypoints.len() < 3 {
        return traj.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5300);
    for _ in 0..attempts {
        if waypoints.len() < 3 {
            break;
        }
        let i = rng.gen_range(0..waypoints.len() - 2);
        let j = rng.gen_range(i + 2..waypoints.len());
        if ws.segment_free(waypoints[i], waypoints[j]) {
            waypoints.drain(i + 1..j);
        }
    }
    let length = waypoints.windows(2).map(|w| w[0].dist(w[1])).sum();
    Trajectory {
        waypoints,
        iterations: traj.iterations + attempts,
        length,
    }
}

/// Adds one step from the nearest node of `tree` toward `target`; returns
/// the new node's index, or `None` when the segment is blocked.
fn extend(
    ws: &Workspace,
    tree: &mut (Vec<Point>, Vec<usize>),
    target: Point,
    step_size: f64,
) -> Option<usize> {
    let (nodes, parents) = tree;
    let (nearest_idx, nearest) = nodes
        .iter()
        .copied()
        .enumerate()
        .min_by(|a, b| {
            a.1.dist(target)
                .partial_cmp(&b.1.dist(target))
                .expect("distances are finite")
        })
        .expect("tree is never empty");
    let d = nearest.dist(target);
    if d < 1e-9 {
        return None;
    }
    let new = if d <= step_size {
        target
    } else {
        nearest.lerp(target, step_size / d)
    };
    if !ws.segment_free(nearest, new) {
        return None;
    }
    nodes.push(new);
    parents.push(nearest_idx);
    Some(nodes.len() - 1)
}

fn walk_to_root(tree: &(Vec<Point>, Vec<usize>), mut idx: usize) -> Vec<Point> {
    let (nodes, parents) = tree;
    let mut path = vec![nodes[idx]];
    while parents[idx] != idx {
        idx = parents[idx];
        path.push(nodes[idx]);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_ws() -> Workspace {
        Workspace::new(4.0, 4.0).with_obstacle(Point::new(2.0, 2.0), 0.5)
    }

    #[test]
    fn finds_path_in_open_space() {
        let ws = Workspace::new(3.0, 3.0);
        let t = plan_rrt(
            &ws,
            Point::new(0.1, 0.1),
            Point::new(2.9, 2.9),
            RrtParams::default(),
            1,
        )
        .unwrap();
        assert!(t.waypoints.len() >= 2);
        assert_eq!(t.waypoints[0], Point::new(0.1, 0.1));
        assert_eq!(*t.waypoints.last().unwrap(), Point::new(2.9, 2.9));
    }

    #[test]
    fn trajectory_avoids_obstacles() {
        let ws = simple_ws();
        let t = plan_rrt(
            &ws,
            Point::new(0.2, 0.2),
            Point::new(3.8, 3.8),
            RrtParams::default(),
            7,
        )
        .unwrap();
        for w in t.waypoints.windows(2) {
            assert!(ws.segment_free(w[0], w[1]), "segment through obstacle");
        }
    }

    #[test]
    fn endpoint_in_obstacle_rejected() {
        let ws = simple_ws();
        assert_eq!(
            plan_rrt(
                &ws,
                Point::new(2.0, 2.0),
                Point::new(3.0, 3.0),
                RrtParams::default(),
                1
            )
            .unwrap_err(),
            RrtError::InvalidEndpoint
        );
    }

    #[test]
    fn impossible_plan_exhausts() {
        // Goal walled off by overlapping obstacles spanning the workspace.
        let mut ws = Workspace::new(4.0, 4.0);
        for i in 0..9 {
            ws = ws.with_obstacle(Point::new(2.0, i as f64 * 0.5), 0.4);
        }
        let result = plan_rrt(
            &ws,
            Point::new(0.5, 2.0),
            Point::new(3.5, 2.0),
            RrtParams {
                max_iterations: 300,
                ..Default::default()
            },
            3,
        );
        assert!(matches!(
            result,
            Err(RrtError::Exhausted { iterations: 300 })
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ws = simple_ws();
        let run = |seed| {
            plan_rrt(
                &ws,
                Point::new(0.2, 0.2),
                Point::new(3.8, 3.8),
                RrtParams::default(),
                seed,
            )
            .unwrap()
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn rrt_star_paths_are_no_longer_than_rrt() {
        let ws = simple_ws();
        let mut rrt_total = 0.0;
        let mut star_total = 0.0;
        for seed in 0..8 {
            rrt_total += plan_rrt(
                &ws,
                Point::new(0.2, 0.2),
                Point::new(3.8, 3.8),
                RrtParams::default(),
                seed,
            )
            .unwrap()
            .length;
            star_total += plan_rrt(
                &ws,
                Point::new(0.2, 0.2),
                Point::new(3.8, 3.8),
                RrtParams::star(),
                seed,
            )
            .unwrap()
            .length;
        }
        assert!(
            star_total <= rrt_total * 1.02,
            "RRT* ({star_total:.2}) should not be meaningfully longer than RRT ({rrt_total:.2})"
        );
    }

    #[test]
    fn rrt_connect_finds_paths_faster() {
        let ws = simple_ws();
        let mut rrt_iters = 0usize;
        let mut connect_iters = 0usize;
        for seed in 0..10 {
            rrt_iters += plan_rrt(
                &ws,
                Point::new(0.2, 0.2),
                Point::new(3.8, 3.8),
                RrtParams::default(),
                seed,
            )
            .unwrap()
            .iterations;
            connect_iters += plan_rrt_connect(
                &ws,
                Point::new(0.2, 0.2),
                Point::new(3.8, 3.8),
                RrtParams::default(),
                seed,
            )
            .unwrap()
            .iterations;
        }
        assert!(
            connect_iters < rrt_iters,
            "RRT-Connect ({connect_iters}) should use fewer iterations than RRT ({rrt_iters})"
        );
    }

    #[test]
    fn rrt_connect_path_is_valid() {
        let ws = simple_ws();
        let t = plan_rrt_connect(
            &ws,
            Point::new(0.2, 0.2),
            Point::new(3.8, 3.8),
            RrtParams::default(),
            3,
        )
        .unwrap();
        assert_eq!(t.waypoints[0], Point::new(0.2, 0.2));
        assert_eq!(*t.waypoints.last().unwrap(), Point::new(3.8, 3.8));
        for w in t.waypoints.windows(2) {
            assert!(
                ws.segment_free(w[0], w[1]) || w[0].dist(w[1]) <= 0.15,
                "segment through obstacle"
            );
        }
    }

    #[test]
    fn rrt_connect_rejects_bad_endpoints() {
        let ws = simple_ws();
        assert_eq!(
            plan_rrt_connect(
                &ws,
                Point::new(2.0, 2.0),
                Point::new(3.0, 3.0),
                RrtParams::default(),
                1
            )
            .unwrap_err(),
            RrtError::InvalidEndpoint
        );
    }

    #[test]
    fn smoothing_shortens_paths_and_stays_collision_free() {
        let ws = simple_ws();
        let mut raw_total = 0.0;
        let mut smooth_total = 0.0;
        for seed in 0..8 {
            let raw = plan_rrt(
                &ws,
                Point::new(0.2, 0.2),
                Point::new(3.8, 3.8),
                RrtParams::default(),
                seed,
            )
            .unwrap();
            let smooth = smooth_trajectory(&ws, &raw, 60, seed);
            raw_total += raw.length;
            smooth_total += smooth.length;
            assert_eq!(smooth.waypoints[0], raw.waypoints[0]);
            assert_eq!(smooth.waypoints.last(), raw.waypoints.last());
            for w in smooth.waypoints.windows(2) {
                assert!(ws.segment_free(w[0], w[1]));
            }
            assert!(smooth.length <= raw.length + 1e-9);
            assert_eq!(smooth.iterations, raw.iterations + 60);
        }
        assert!(
            smooth_total < raw_total * 0.9,
            "smoothing should cut ≥10% of path length ({smooth_total:.2} vs {raw_total:.2})"
        );
    }

    #[test]
    fn smoothing_degenerate_paths_is_identity() {
        let ws = Workspace::new(2.0, 2.0);
        let traj = Trajectory {
            waypoints: vec![Point::new(0.1, 0.1), Point::new(1.9, 1.9)],
            iterations: 5,
            length: Point::new(0.1, 0.1).dist(Point::new(1.9, 1.9)),
        };
        let smoothed = smooth_trajectory(&ws, &traj, 20, 1);
        assert_eq!(smoothed, traj);
    }

    #[test]
    fn path_length_at_least_straight_line() {
        let ws = Workspace::new(5.0, 5.0);
        let start = Point::new(0.5, 0.5);
        let goal = Point::new(4.5, 4.5);
        let t = plan_rrt(&ws, start, goal, RrtParams::default(), 5).unwrap();
        assert!(t.length >= start.dist(goal) - 1e-9);
    }
}
