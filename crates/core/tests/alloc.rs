//! Allocation-count gates for the data-oriented step loop.
//!
//! A counting global allocator (thread-local counters, so parallel test
//! threads never pollute each other's measurements) pins two properties of
//! the hot path:
//!
//! 1. the reworked planning/memory/comms primitives — streaming memory
//!    retrieval into a reused buffer, point entity queries, prompt assembly
//!    via [`PromptWriter`], and inference with a borrowed-prompt request —
//!    perform **zero** heap allocations at steady state (after warm-up);
//! 2. a full episode's allocation rate is **flat**: later steps do not
//!    allocate more than earlier ones, i.e. nothing on the step loop clones
//!    or re-formats ever-growing history.
//!
//! The allocator lives here (an integration test is its own crate) because
//! the library itself is `#![forbid(unsafe_code)]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use embodied_agents::config::MemoryCapacity;
use embodied_agents::modules::{MemoryModule, RecordKind};
use embodied_agents::prompt::PromptWriter;
use embodied_agents::{workloads, RunOverrides};
use embodied_env::TaskDifficulty;
use embodied_llm::{LlmEngine, LlmRequest, ModelProfile, Purpose};

/// Delegates everything to [`System`], bumping a thread-local counter on
/// each allocation (and reallocation — growth is an allocation for the
/// purposes of a zero-alloc gate). Deallocations are free and uncounted.
struct CountingAllocator;

thread_local! {
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

// SAFETY: pure delegation to `System`; the counter bump has no effect on
// layout or pointer validity. `try_with` never allocates for a const-init
// thread local and degrades to "uncounted" during TLS teardown.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations observed by the current thread so far.
fn allocs() -> usize {
    ALLOCS.with(|c| c.get())
}

/// The steady-state planning path: retrieval streamed into a reused buffer,
/// a point `knows` query, prompt assembly into a second reused buffer, and
/// one inference call lending that buffer to the engine.
fn plan_once(
    mem: &MemoryModule,
    engine: &mut LlmEngine,
    memory_buf: &mut String,
    prompt_buf: &mut String,
) -> f64 {
    memory_buf.clear();
    let stats = mem.retrieve_write(memory_buf);
    let known = mem.knows("object_3");
    prompt_buf.clear();
    PromptWriter::new(prompt_buf, "You are an embodied agent.")
        .push("goal", "craft an iron pickaxe")
        .push("known", if known { "object_3" } else { "nothing" })
        .push("memory", memory_buf);
    let req = LlmRequest::new(Purpose::Planning, prompt_buf, 64).with_difficulty(0.4);
    let resp = engine.infer(req).expect("inference succeeds");
    resp.quality + stats.inconsistency_penalty
}

#[test]
fn steady_state_planning_path_is_allocation_free() {
    // A memory with real history: 64 records over 32 steps, sliding window.
    let landmarks = vec!["kitchen".to_string(), "forge".to_string()];
    let mut mem = MemoryModule::new(true, MemoryCapacity::Steps(8), true, true, landmarks);
    for step in 0..32 {
        mem.begin_step(step);
        mem.store(
            RecordKind::Observation,
            format!("saw object_{} near the forge", step % 10),
            vec![format!("object_{}", step % 10)],
        );
        mem.store(
            RecordKind::Action,
            format!("moved toward object_{}", step % 10),
            vec![format!("object_{}", step % 10)],
        );
    }
    let mut engine = LlmEngine::new(ModelProfile::gpt4_api(), 7);
    let mut memory_buf = String::new();
    let mut prompt_buf = String::new();

    // Warm-up: grows the reused buffers and the tokenizer's incremental
    // cache to their steady-state capacity.
    let mut acc = 0.0;
    for _ in 0..3 {
        acc += plan_once(&mem, &mut engine, &mut memory_buf, &mut prompt_buf);
    }

    let before = allocs();
    for _ in 0..100 {
        acc += plan_once(&mem, &mut engine, &mut memory_buf, &mut prompt_buf);
    }
    let after = allocs();
    assert!(acc.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state planning path allocated {} times over 100 iterations",
        after - before
    );
}

#[test]
fn episode_allocations_do_not_grow_with_history() {
    // Drive a long episode step by step and compare the allocation count of
    // an early window against a late one. If any hot-path component cloned
    // or re-formatted the full history each step, the late window would
    // allocate strictly more; a flat profile pins the data-oriented loop.
    let spec = workloads::find("DEPS").expect("suite member");
    let overrides = RunOverrides {
        difficulty: Some(TaskDifficulty::Hard),
        ..Default::default()
    };
    let config = overrides.apply(&spec);
    let mut sys = spec.build_system(&config, TaskDifficulty::Hard, 1, 42);

    const WARMUP: usize = 15;
    const WINDOW: usize = 30;
    for _ in 0..WARMUP {
        assert!(sys.step_once(), "episode ended during warm-up");
    }
    let start = allocs();
    for _ in 0..WINDOW {
        assert!(sys.step_once(), "episode ended during the early window");
    }
    let early = allocs() - start;
    let start = allocs();
    for _ in 0..WINDOW {
        assert!(sys.step_once(), "episode ended during the late window");
    }
    let late = allocs() - start;

    // The environment side legitimately allocates per step (new records,
    // candidate menus), so the gate is *flatness*, not zero: the late
    // window may not allocate more than the early one beyond a small
    // constant slack for amortized container growth.
    assert!(
        late <= early + early / 4 + 16,
        "allocation rate grows with history: early window {early}, late window {late}"
    );
}
