//! Episode runner: the one entry point experiments use to run a workload
//! under arbitrary overrides and collect reports.

use crate::config::{AgentConfig, MemoryCapacity, ModuleToggles, Optimizations};
use crate::system::EmbodiedSystem;
use crate::workloads::WorkloadSpec;
use embodied_env::TaskDifficulty;
use embodied_llm::{
    FleetConfig, FleetSummary, InferenceService, ModelProfile, SimEvent, WindowShare,
};
use embodied_profiler::{
    Aggregate, EpisodeReport, FromJson, JsonError, JsonValue, SimInstant, ToJson,
};
use std::collections::VecDeque;

/// Per-run overrides layered on a workload's defaults.
#[derive(Debug, Clone, Default)]
pub struct RunOverrides {
    /// Task difficulty (default: the suite default, Medium).
    pub difficulty: Option<TaskDifficulty>,
    /// Team size (multi-agent workloads only).
    pub num_agents: Option<usize>,
    /// Module toggles (Fig. 3 ablations).
    pub toggles: Option<ModuleToggles>,
    /// Memory capacity (Fig. 5 sweep).
    pub memory_capacity: Option<MemoryCapacity>,
    /// Planner model replacement (Fig. 4's local-model comparison).
    pub planner: Option<ModelProfile>,
    /// Optimization switches (recommendation ablations).
    pub opts: Option<Optimizations>,
    /// Environment replacement — run a workload on a different dataset,
    /// e.g. DEPS on ALFWorld instead of Minecraft (Table II lists both).
    pub env: Option<crate::workloads::EnvKind>,
    /// Trajectory-planner replacement (design-choice ablation).
    pub trajectory_planner: Option<embodied_env::TrajectoryPlanner>,
    /// Memory retrieval-index replacement (Fig. 5 in-text comparison).
    pub retrieval_mode: Option<crate::modules::RetrievalMode>,
    /// Injected-fault profile for every LLM engine (resilience sweeps).
    pub fault_profile: Option<embodied_llm::FaultProfile>,
    /// Retry/backoff policy for the resilience wrapper.
    pub retry_policy: Option<embodied_llm::RetryPolicy>,
    /// Agent-process fault schedule (crash/stall/recover + coordinator
    /// failover) for the resilience sweeps.
    pub agent_faults: Option<crate::faults::AgentFaultProfile>,
    /// Message-channel fault profile (drop/duplicate/corrupt/delay/
    /// partition) for the resilience sweeps.
    pub channel: Option<crate::faults::ChannelProfile>,
    /// Content-plane (semantic) fault profile for the planning engines —
    /// the third fault plane, swept by the guardrail experiments.
    pub semantic_faults: Option<embodied_llm::SemanticFaultProfile>,
    /// Guardrail repair policy applied to plan decisions before actuation.
    pub repair_policy: Option<crate::guardrail::RepairPolicy>,
    /// Shared-inference-service scheduling (cross-tenant batching and the
    /// backend concurrency limit, swept by the serving experiments).
    pub serving: Option<embodied_llm::ServingConfig>,
    /// Serving fault plane (replica crashes, brownouts, queue overflow) —
    /// the fourth fault plane, swept by the SLO experiments. Applied *on
    /// top of* `serving`, so a sweep can fix the scheduling policy and
    /// vary only the fault rates.
    pub serving_faults: Option<embodied_llm::ServingFaultProfile>,
    /// Embodied fault plane (perception dropout/phantoms/stale frames/
    /// misreads + actuation silent-failures/slips/downtime) — the fifth
    /// fault plane, swept by the embodied fault experiments.
    pub env_faults: Option<embodied_env::EnvFaultProfile>,
    /// Closed-loop recovery stack (watchdog re-observation, bounded action
    /// retry with replan escalation, re-ground-on-phantom).
    pub recovery_policy: Option<crate::recovery::RecoveryPolicy>,
}

impl RunOverrides {
    /// Applies the overrides to a workload's default agent config.
    pub fn apply(&self, spec: &WorkloadSpec) -> AgentConfig {
        let mut config = spec.config.clone();
        if let Some(toggles) = self.toggles {
            config.toggles = toggles;
        }
        if let Some(capacity) = self.memory_capacity {
            config.memory_capacity = capacity;
        }
        if let Some(planner) = &self.planner {
            config.planner = planner.clone();
        }
        if let Some(opts) = self.opts {
            config.opts = opts;
        }
        if let Some(planner) = self.trajectory_planner {
            config.trajectory_planner = planner;
        }
        if let Some(mode) = self.retrieval_mode {
            config.retrieval_mode = mode;
        }
        if let Some(profile) = self.fault_profile {
            config.fault_profile = profile;
        }
        if let Some(policy) = self.retry_policy {
            config.retry_policy = policy;
        }
        if let Some(profile) = self.agent_faults {
            config.agent_fault_profile = profile;
        }
        if let Some(profile) = self.channel {
            config.channel_profile = profile;
        }
        if let Some(profile) = self.semantic_faults {
            config.semantic_fault_profile = profile;
        }
        if let Some(policy) = self.repair_policy {
            config.repair_policy = policy;
        }
        if let Some(serving) = self.serving {
            config.serving = serving;
        }
        if let Some(faults) = self.serving_faults {
            config.serving = config.serving.with_faults(faults);
        }
        if let Some(profile) = self.env_faults {
            config.env_fault_profile = profile;
        }
        if let Some(policy) = self.recovery_policy {
            config.recovery_policy = policy;
        }
        config
    }

    /// Resolves overrides against `spec` into the concrete system to run:
    /// the shared setup of [`run_episode`] and [`run_episode_traced`].
    fn build_system(&self, spec: &WorkloadSpec, seed: u64) -> crate::system::EmbodiedSystem {
        let config = self.apply(spec);
        let difficulty = self.difficulty.unwrap_or_default();
        let num_agents = self.num_agents.unwrap_or(spec.default_agents);
        match self.env {
            Some(env) => {
                let mut swapped = spec.clone();
                swapped.env = env;
                swapped.build_system(&config, difficulty, num_agents, seed)
            }
            None => spec.build_system(&config, difficulty, num_agents, seed),
        }
    }
}

impl ToJson for RunOverrides {
    /// Serializes only the overrides that are actually set, so a fixture
    /// documents exactly the knobs a scenario turns and nothing else.
    fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        let mut put = |key: &str, v: Option<JsonValue>| {
            if let Some(v) = v {
                fields.push((key.into(), v));
            }
        };
        put("difficulty", self.difficulty.map(|v| v.to_json()));
        put(
            "num_agents",
            self.num_agents.map(|v| JsonValue::Num(v as f64)),
        );
        put("toggles", self.toggles.map(|v| v.to_json()));
        put("memory_capacity", self.memory_capacity.map(|v| v.to_json()));
        put("planner", self.planner.as_ref().map(|v| v.to_json()));
        put("opts", self.opts.map(|v| v.to_json()));
        put("env", self.env.map(|v| v.to_json()));
        put(
            "trajectory_planner",
            self.trajectory_planner.map(|v| v.to_json()),
        );
        put("retrieval_mode", self.retrieval_mode.map(|v| v.to_json()));
        put("fault_profile", self.fault_profile.map(|v| v.to_json()));
        put("retry_policy", self.retry_policy.map(|v| v.to_json()));
        put("agent_faults", self.agent_faults.map(|v| v.to_json()));
        put("channel", self.channel.map(|v| v.to_json()));
        put("semantic_faults", self.semantic_faults.map(|v| v.to_json()));
        put("repair_policy", self.repair_policy.map(|v| v.to_json()));
        put("serving", self.serving.map(|v| v.to_json()));
        put("serving_faults", self.serving_faults.map(|v| v.to_json()));
        put("env_faults", self.env_faults.map(|v| v.to_json()));
        put("recovery_policy", self.recovery_policy.map(|v| v.to_json()));
        JsonValue::Object(fields)
    }
}

impl FromJson for RunOverrides {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        fn opt<T: FromJson>(value: &JsonValue, key: &str) -> Result<Option<T>, JsonError> {
            match value.get(key) {
                Some(v) => Ok(Some(T::from_json(v)?)),
                None => Ok(None),
            }
        }
        let num_agents = match value.get("num_agents") {
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| JsonError::msg("num_agents: expected a whole number"))?
                    as usize,
            ),
            None => None,
        };
        Ok(RunOverrides {
            difficulty: opt(value, "difficulty")?,
            num_agents,
            toggles: opt(value, "toggles")?,
            memory_capacity: opt(value, "memory_capacity")?,
            planner: opt(value, "planner")?,
            opts: opt(value, "opts")?,
            env: opt(value, "env")?,
            trajectory_planner: opt(value, "trajectory_planner")?,
            retrieval_mode: opt(value, "retrieval_mode")?,
            fault_profile: opt(value, "fault_profile")?,
            retry_policy: opt(value, "retry_policy")?,
            agent_faults: opt(value, "agent_faults")?,
            channel: opt(value, "channel")?,
            semantic_faults: opt(value, "semantic_faults")?,
            repair_policy: opt(value, "repair_policy")?,
            serving: opt(value, "serving")?,
            serving_faults: opt(value, "serving_faults")?,
            env_faults: opt(value, "env_faults")?,
            recovery_policy: opt(value, "recovery_policy")?,
        })
    }
}

/// Stride between consecutive episode seeds. A prime comfortably larger
/// than any per-episode RNG-stream offset, so episode streams never
/// overlap; shared by every sweep path (sequential and parallel) so the
/// two can never drift apart.
pub const EPISODE_SEED_STRIDE: u64 = 7919;

/// The seed of episode `i` in a sweep starting at `base`. Every harness
/// that derives per-episode seeds must go through this helper — it is what
/// makes parallel and sequential sweeps bit-identical.
pub fn episode_seed(base: u64, i: usize) -> u64 {
    base.wrapping_add(i as u64 * EPISODE_SEED_STRIDE)
}

/// Runs one episode of `spec` with `overrides` at `seed`.
pub fn run_episode(spec: &WorkloadSpec, overrides: &RunOverrides, seed: u64) -> EpisodeReport {
    overrides.build_system(spec, seed).run()
}

/// Runs one episode and also returns the Chrome trace-event JSON of its
/// full module timeline (loadable in `chrome://tracing` / Perfetto).
pub fn run_episode_traced(
    spec: &WorkloadSpec,
    overrides: &RunOverrides,
    seed: u64,
) -> (EpisodeReport, String) {
    let mut system = overrides.build_system(spec, seed);
    let report = system.run();
    let json = embodied_profiler::chrome_trace_json(system.trace());
    (report, json)
}

/// Runs `episodes` seeds and aggregates them under `label`.
pub fn run_many(
    spec: &WorkloadSpec,
    overrides: &RunOverrides,
    episodes: usize,
    base_seed: u64,
    label: impl Into<String>,
) -> Aggregate {
    let reports: Vec<EpisodeReport> = (0..episodes)
        .map(|i| run_episode(spec, overrides, episode_seed(base_seed, i)))
        .collect();
    Aggregate::from_reports(label, &reports)
}

/// The outcome of one fleet run: every episode's report (in arrival
/// order) plus the shared substrate's fleet-level counters.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-episode reports, indexed by episode number.
    pub reports: Vec<EpisodeReport>,
    /// What the shared serving substrate saw across all episodes.
    pub summary: FleetSummary,
}

/// One admitted episode in the fleet runner's slot table.
struct FleetSlot {
    system: EmbodiedSystem,
    /// Global instant of admission: episode-local trace time `t` lives at
    /// global `base + t`.
    base: SimInstant,
}

/// Admits `episode` at global instant `at`: anchors its scope base,
/// builds its system as tenants of the shared service, and schedules its
/// first step.
#[allow(clippy::too_many_arguments)]
fn admit_episode(
    spec: &WorkloadSpec,
    config: &AgentConfig,
    difficulty: TaskDifficulty,
    num_agents: usize,
    base_seed: u64,
    service: &InferenceService,
    slots: &mut [Option<FleetSlot>],
    episode: usize,
    at: SimInstant,
) {
    service.set_scope_base(episode, at);
    let system = spec.build_system_in_fleet(
        config,
        difficulty,
        num_agents,
        episode_seed(base_seed, episode),
        service,
        episode,
    );
    service.push_fleet_event(at, SimEvent::AgentStepReady { episode });
    slots[episode] = Some(FleetSlot { system, base: at });
}

/// Runs `episodes` staggered episodes of `spec` multiplexed onto **one**
/// shared inference service and **one** virtual clock — the fleet regime,
/// where serving contention (queueing, batching, faults) spans episodes
/// instead of being reset per run.
///
/// The discrete-event loop pops `(virtual-time, sequence-id)`-ordered
/// events: `RequestArrival` admits an episode (or queues it behind
/// [`FleetConfig::max_sessions`]), `AgentStepReady` advances one episode by
/// one step via the `step_once` seam, and `BatchWindowClose` settles a
/// serving window that may span several episodes — the parked episodes
/// receive their amortized shares and resume. Episode seeds come from
/// [`episode_seed`], so per-episode randomness is untouched by scheduling;
/// the same `(spec, overrides, episodes, base_seed, fleet)` tuple replays
/// bit-identically regardless of host parallelism.
pub fn run_fleet(
    spec: &WorkloadSpec,
    overrides: &RunOverrides,
    episodes: usize,
    base_seed: u64,
    fleet: FleetConfig,
) -> FleetReport {
    let fleet = fleet.validated().expect("fleet config must be valid");
    let config = overrides.apply(spec);
    let difficulty = overrides.difficulty.unwrap_or_default();
    let num_agents = overrides.num_agents.unwrap_or(spec.default_agents);
    let spec = match overrides.env {
        Some(env) => {
            let mut swapped = spec.clone();
            swapped.env = env;
            swapped
        }
        None => spec.clone(),
    };
    let service = InferenceService::with_seed(config.serving, base_seed);
    service.enable_fleet(fleet, episodes);
    for i in 0..episodes {
        service.push_fleet_event(
            SimInstant::EPOCH + fleet.stagger * i as u64,
            SimEvent::RequestArrival { episode: i },
        );
    }
    let mut slots: Vec<Option<FleetSlot>> =
        std::iter::repeat_with(|| None).take(episodes).collect();
    let mut reports: Vec<Option<EpisodeReport>> = vec![None; episodes];
    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut active = 0usize;
    let mut close_scheduled = false;
    while let Some(ev) = service.pop_fleet_event() {
        match ev.event {
            SimEvent::RequestArrival { episode } => {
                let cap = fleet.max_sessions as usize;
                if cap == 0 || active < cap {
                    active += 1;
                    admit_episode(
                        &spec, &config, difficulty, num_agents, base_seed, &service, &mut slots,
                        episode, ev.at,
                    );
                } else {
                    waiting.push_back(episode);
                }
            }
            SimEvent::AgentStepReady { episode } => {
                service.set_fleet_scope(episode);
                let slot = slots[episode]
                    .as_mut()
                    .expect("step-ready for an unadmitted episode");
                if slot.system.step_once() {
                    if slot.system.pending_window_entries() > 0 {
                        // Parked on an open serving window; the close event
                        // settles the shares and reschedules this episode.
                        if !close_scheduled {
                            close_scheduled = true;
                            let gnow = slot.base + slot.system.trace().elapsed();
                            service.push_fleet_event(
                                gnow + fleet.batch_window,
                                SimEvent::BatchWindowClose,
                            );
                        }
                    } else {
                        let gnow = slot.base + slot.system.trace().elapsed();
                        service.push_fleet_event(gnow, SimEvent::AgentStepReady { episode });
                    }
                } else {
                    let slot = slots[episode].take().expect("slot vanished mid-episode");
                    assert!(
                        slot.system.trace().is_start_monotone(),
                        "episode {episode}: span starts rewound on the virtual timeline"
                    );
                    reports[episode] = Some(slot.system.report());
                    active -= 1;
                    if let Some(next) = waiting.pop_front() {
                        service.push_fleet_event(ev.at, SimEvent::RequestArrival { episode: next });
                    }
                }
            }
            SimEvent::BatchWindowClose => {
                close_scheduled = false;
                let shares = service.close_fleet_window(ev.at);
                // Settle per episode, preserving submission order within
                // each scope and first-appearance order across scopes — both
                // deterministic, so resume-event sequence ids are too.
                let mut by_scope: Vec<(usize, Vec<WindowShare>)> = Vec::new();
                for (scope, share) in shares {
                    match by_scope.iter_mut().find(|(s, _)| *s == scope) {
                        Some((_, list)) => list.push(share),
                        None => by_scope.push((scope, vec![share])),
                    }
                }
                for (scope, scope_shares) in by_scope {
                    service.set_fleet_scope(scope);
                    let slot = slots[scope]
                        .as_mut()
                        .expect("window share for a retired episode");
                    slot.system.settle_fleet_shares(&scope_shares);
                    let gnow = slot.base + slot.system.trace().elapsed();
                    service.push_fleet_event(gnow, SimEvent::AgentStepReady { episode: scope });
                }
            }
            SimEvent::DecodeFinish { .. } | SimEvent::ReplicaRestart { .. } => {
                unreachable!("substrate events are consumed inside pop_fleet_event")
            }
        }
    }
    let summary = service.fleet_summary();
    let reports = reports
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("episode {i} never completed")))
        .collect();
    FleetReport { reports, summary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::find;
    use embodied_profiler::ModuleKind;

    #[test]
    fn jarvis_episode_runs_and_reports() {
        let spec = find("JARVIS-1").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, 1);
        assert!(report.steps > 0);
        assert!(report.tokens.calls > 0);
        assert!(report.latency.as_secs_f64() > 10.0);
        // Planning must dominate sensing for an LLM workload.
        assert!(
            report.breakdown.module(ModuleKind::Planning)
                > report.breakdown.module(ModuleKind::Sensing)
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_reports() {
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let a = run_episode(&spec, &overrides, 9);
        let b = run_episode(&spec, &overrides, 9);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn coela_multi_agent_episode_communicates() {
        let spec = find("CoELA").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, 3);
        assert_eq!(report.agents, 2);
        assert!(report.messages.generated > 0, "decentralized agents talk");
        assert!(
            !report.breakdown.module(ModuleKind::Communication).is_zero(),
            "communication latency must be billed"
        );
    }

    #[test]
    fn centralized_episode_runs() {
        let spec = find("MindAgent").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, 5);
        assert!(report.steps > 0);
        assert!(report.tokens.calls > 0);
    }

    #[test]
    fn hybrid_episode_runs() {
        let spec = find("HMAS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, 5);
        assert!(report.steps > 0);
        assert!(report.messages.generated > 0);
    }

    #[test]
    fn run_many_aggregates() {
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let agg = run_many(&spec, &overrides, 3, 0, "DEPS-easy");
        assert_eq!(agg.episodes, 3);
        assert!(agg.mean_steps > 0.0);
    }

    #[test]
    fn env_override_swaps_dataset() {
        // DEPS evaluated on ALFWorld instead of Minecraft (Table II).
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            env: Some(crate::workloads::EnvKind::AlfWorld),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, 4);
        assert!(report.steps > 0);
        assert_eq!(report.workload, "DEPS");
    }

    #[test]
    fn traced_episode_exports_chrome_json() {
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let (report, json) = run_episode_traced(&spec, &overrides, 2);
        assert!(report.steps > 0);
        assert!(json.contains("\"cat\": \"planning\""));
        assert!(json.contains("\"ph\": \"X\""));
        // Every span appears as one event.
        assert!(
            json.matches("\"ph\": \"X\"").count() > report.steps,
            "several spans per step expected"
        );
    }

    #[test]
    fn default_runs_keep_resilience_quiet() {
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, 9);
        assert!(
            report.resilience.is_quiet(),
            "no faults configured, none may appear: {}",
            report.resilience
        );
        assert!(
            report.repairs.is_quiet(),
            "guardrail off by default, nothing may be validated: {}",
            report.repairs
        );
        assert!(
            report.serving_faults.is_quiet(),
            "serving fault plane off by default, nothing may fire: {}",
            report.serving_faults
        );
        assert!(
            report.env_faults.is_quiet(),
            "embodied fault plane off by default, nothing may fire: {}",
            report.env_faults
        );
        assert!(
            report.recovery.is_quiet(),
            "recovery off by default, nothing may intervene: {}",
            report.recovery
        );
    }

    #[test]
    fn env_faults_inject_and_replay_deterministically() {
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            env_faults: Some(embodied_env::EnvFaultProfile::uniform(0.25)),
            ..Default::default()
        };
        let a = run_episode(&spec, &overrides, 7);
        let b = run_episode(&spec, &overrides, 7);
        assert!(a.env_faults.faults() > 0, "{}", a.env_faults);
        assert!(
            a.recovery.is_quiet(),
            "recovery stays opt-in: {}",
            a.recovery
        );
        assert_eq!(a.env_faults, b.env_faults);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn recovery_engages_under_env_faults_and_terminates() {
        // Heavy perception + actuation faults with the full closed loop on:
        // every recovery mechanism must both engage and terminate (bounded
        // retries, watchdog window, one re-ground per rejection), so the
        // episode always reaches its step budget or completes.
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            env_faults: Some(embodied_env::EnvFaultProfile::uniform(0.35)),
            recovery_policy: Some(crate::recovery::RecoveryPolicy::standard()),
            ..Default::default()
        };
        let a = run_episode(&spec, &overrides, 11);
        let b = run_episode(&spec, &overrides, 11);
        assert!(a.env_faults.faults() > 0, "{}", a.env_faults);
        assert!(a.recovery.interventions() > 0, "{}", a.recovery);
        assert!(a.steps > 0);
        // Retries are bounded by the policy budget per failed action.
        let budget = crate::recovery::RecoveryPolicy::standard().act_retries() as u64;
        assert!(a.recovery.act_retries <= a.steps as u64 * budget.max(1) * 2);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn recovery_engages_in_centralized_paradigm() {
        let spec = find("MindAgent").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            env_faults: Some(embodied_env::EnvFaultProfile::uniform(0.35)),
            recovery_policy: Some(crate::recovery::RecoveryPolicy::standard()),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, 13);
        assert!(report.env_faults.faults() > 0, "{}", report.env_faults);
        assert!(report.recovery.interventions() > 0, "{}", report.recovery);
    }

    #[test]
    fn serving_faults_inject_and_replay_deterministically() {
        let spec = find("CoELA").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            serving: Some(
                embodied_llm::ServingConfig::limited(1)
                    .with_replicas(2)
                    .with_deadline(embodied_profiler::SimDuration::from_secs(240)),
            ),
            serving_faults: Some(embodied_llm::ServingFaultProfile::stressed(0.4)),
            ..Default::default()
        };
        let a = run_episode(&spec, &overrides, 7);
        let b = run_episode(&spec, &overrides, 7);
        assert!(a.serving_faults.faults() > 0, "{}", a.serving_faults);
        assert!(a.serving_faults.slo_total > 0, "deadline set: SLO measured");
        assert_eq!(a.serving_faults, b.serving_faults);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn hedging_and_shedding_fire_under_a_stressed_serving_plane() {
        // One saturated replica pair under heavy brownouts: hedges race the
        // slow primary, and the shed threshold rejects low-priority calls
        // while every paradigm path survives on its degradation fallbacks.
        let spec = find("CoELA").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            serving: Some(
                embodied_llm::ServingConfig::limited(1)
                    .with_replicas(2)
                    .with_hedging(embodied_profiler::SimDuration::from_secs(2))
                    .with_shedding(1),
            ),
            serving_faults: Some(embodied_llm::ServingFaultProfile::brownouts(0.8)),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, 11);
        assert!(report.steps > 0, "episode survives shed/hedge paths");
        assert!(
            report.serving_faults.hedges() > 0,
            "brownouts past the hedge trigger: {}",
            report.serving_faults
        );
        assert!(
            report.serving_faults.shed > 0,
            "depth-1 threshold must shed on a multi-call step: {}",
            report.serving_faults
        );
        assert!(
            report.serving_faults.hedge_tokens > 0,
            "hedge duplicates bill their tokens"
        );
        let quiet = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let baseline = run_episode(&spec, &quiet, 11);
        assert!(
            report.tokens.cost_usd < baseline.tokens.cost_usd * 2.0,
            "shedding offsets the hedge premium"
        );
    }

    #[test]
    fn semantic_faults_inject_and_replay_deterministically() {
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            semantic_faults: Some(embodied_llm::SemanticFaultProfile::uniform(0.5)),
            repair_policy: Some(crate::guardrail::RepairPolicy::Reprompt { max_attempts: 2 }),
            ..Default::default()
        };
        let a = run_episode(&spec, &overrides, 7);
        let b = run_episode(&spec, &overrides, 7);
        assert!(a.repairs.validations > 0, "{}", a.repairs);
        assert!(a.repairs.rejections() > 0, "{}", a.repairs);
        assert!(a.repairs.repair_tokens > 0, "re-prompts pay tokens");
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn semantic_faults_guard_centralized_paradigm_too() {
        let spec = find("MindAgent").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            semantic_faults: Some(embodied_llm::SemanticFaultProfile::uniform(0.6)),
            repair_policy: Some(crate::guardrail::RepairPolicy::Constrain),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, 13);
        assert!(report.repairs.validations > 0, "{}", report.repairs);
        assert!(
            report.repairs.constrained > 0,
            "central corruption must be constrained: {}",
            report.repairs
        );
    }

    #[test]
    fn skip_policy_burns_steps_without_repair_tokens() {
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            semantic_faults: Some(embodied_llm::SemanticFaultProfile::uniform(0.5)),
            repair_policy: Some(crate::guardrail::RepairPolicy::Skip),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, 7);
        assert!(report.repairs.skipped_steps > 0, "{}", report.repairs);
        assert_eq!(report.repairs.repair_tokens, 0);
        assert_eq!(report.repairs.repair_attempts, 0);
    }

    #[test]
    fn fault_overrides_inject_and_replay_deterministically() {
        let spec = find("CoELA").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            fault_profile: Some(embodied_llm::FaultProfile::uniform(0.25)),
            retry_policy: Some(embodied_llm::RetryPolicy::standard()),
            ..Default::default()
        };
        let a = run_episode(&spec, &overrides, 7);
        let b = run_episode(&spec, &overrides, 7);
        assert!(a.resilience.faults() > 0, "{}", a.resilience);
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn faults_slow_episodes_down() {
        let spec = find("DEPS").unwrap();
        let clean = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let faulty = RunOverrides {
            fault_profile: Some(embodied_llm::FaultProfile::uniform(0.3)),
            ..clean.clone()
        };
        let a = run_episode(&spec, &clean, 11);
        let b = run_episode(&spec, &faulty, 11);
        assert!(
            b.resilience.backoff + b.resilience.wasted_latency
                > embodied_profiler::SimDuration::ZERO,
            "faulted run must bill retry time: {}",
            b.resilience
        );
        // Per-step latency must not shrink when a third of calls fault.
        assert!(
            b.latency.as_secs_f64() / b.steps.max(1) as f64
                >= a.latency.as_secs_f64() / a.steps.max(1) as f64,
            "faults cannot make steps faster"
        );
    }

    #[test]
    fn fleet_runs_staggered_episodes_and_reports_each() {
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let out = run_fleet(&spec, &overrides, 3, 5, FleetConfig::default());
        assert_eq!(out.reports.len(), 3);
        assert_eq!(out.summary.sessions, 3);
        assert!(out.summary.events > 0, "{:?}", out.summary);
        for report in &out.reports {
            assert!(report.steps > 0);
            assert!(report.tokens.calls > 0);
        }
        let longest = out.reports.iter().map(|r| r.latency).max().unwrap();
        assert!(
            out.summary.makespan >= longest,
            "the shared clock covers every episode: {} < {longest}",
            out.summary.makespan
        );
    }

    #[test]
    fn single_episode_fleet_matches_the_per_episode_runner() {
        // With serving pass-through and one session, the virtual-time loop
        // is pure re-plumbing: the report must match `run_episode` exactly.
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let solo = run_episode(&spec, &overrides, 5);
        let fleet = run_fleet(&spec, &overrides, 1, 5, FleetConfig::default());
        assert_eq!(format!("{:?}", fleet.reports[0]), format!("{solo:?}"));
    }

    #[test]
    fn fleet_same_seed_replays_bit_identically() {
        let spec = find("CoELA").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            serving: Some(embodied_llm::ServingConfig::limited(1).with_replicas(2)),
            ..Default::default()
        };
        let cfg = FleetConfig::default().with_sessions(2);
        let a = run_fleet(&spec, &overrides, 4, 7, cfg);
        let b = run_fleet(&spec, &overrides, 4, 7, cfg);
        assert_eq!(format!("{:?}", a.reports), format!("{:?}", b.reports));
        assert_eq!(format!("{:?}", a.summary), format!("{:?}", b.summary));
    }

    #[test]
    fn fleet_batches_across_concurrent_episodes() {
        let spec = find("CoELA").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            serving: Some(embodied_llm::ServingConfig::batched()),
            ..Default::default()
        };
        let cfg = FleetConfig::default()
            .with_stagger(embodied_profiler::SimDuration::from_millis(100))
            .with_batch_window(embodied_profiler::SimDuration::from_secs(60));
        let out = run_fleet(&spec, &overrides, 3, 7, cfg);
        assert!(
            out.summary.cross_episode_batches > 0,
            "near-simultaneous episodes must share at least one batch: {:?}",
            out.summary
        );
        for report in &out.reports {
            // `batches` ledgers to the group lead's scope; membership is the
            // per-episode signal every participant shares.
            assert!(
                report.serving.batched_requests > 0,
                "every episode rides at least one batch: {:?}",
                report.serving
            );
        }
    }

    #[test]
    fn fleet_session_cap_queues_admissions() {
        let spec = find("DEPS").unwrap();
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            ..Default::default()
        };
        let capped = FleetConfig::default().with_sessions(1);
        let out = run_fleet(&spec, &overrides, 3, 5, capped);
        assert_eq!(out.reports.len(), 3, "queued arrivals still complete");
        assert_eq!(out.summary.sessions, 3);
    }

    #[test]
    fn overrides_replace_planner() {
        let spec = find("JARVIS-1").unwrap();
        let overrides = RunOverrides {
            planner: Some(ModelProfile::llama3_8b()),
            ..Default::default()
        };
        let config = overrides.apply(&spec);
        assert_eq!(config.planner.name, "Llama-3-8B (local)");
    }

    #[test]
    fn overrides_json_round_trip_is_exact() {
        // Empty overrides serialize to an empty object and back.
        let empty = RunOverrides::default();
        let back =
            RunOverrides::from_json(&JsonValue::parse(&empty.to_json().render_pretty()).unwrap())
                .unwrap();
        assert!(format!("{back:?}") == format!("{empty:?}"));

        // A fully-populated override set round-trips every field exactly.
        let full = RunOverrides {
            difficulty: Some(TaskDifficulty::Hard),
            num_agents: Some(4),
            toggles: Some(ModuleToggles::without_reflection()),
            memory_capacity: Some(MemoryCapacity::Steps(12)),
            planner: Some(ModelProfile::llama_70b()),
            opts: Some(Optimizations {
                batching: true,
                quantization: embodied_llm::Quantization::Awq4Bit,
                plan_horizon: 3,
                ..Default::default()
            }),
            env: Some(crate::workloads::EnvKind::BoxWorld(
                embodied_env::BoxVariant::BoxLift,
            )),
            trajectory_planner: Some(embodied_env::TrajectoryPlanner::RrtConnect),
            retrieval_mode: Some(crate::modules::RetrievalMode::TextEmbedding),
            fault_profile: Some(embodied_llm::FaultProfile::uniform(0.15)),
            retry_policy: Some(embodied_llm::RetryPolicy::standard()),
            agent_faults: Some(crate::faults::AgentFaultProfile::uniform_with_failover(
                0.05,
            )),
            channel: Some(crate::faults::ChannelProfile::lossy(0.1)),
            semantic_faults: Some(embodied_llm::SemanticFaultProfile::uniform(0.2)),
            repair_policy: Some(crate::guardrail::RepairPolicy::Reprompt { max_attempts: 2 }),
            serving: Some(embodied_llm::ServingConfig::default()),
            serving_faults: Some(embodied_llm::ServingFaultProfile::stressed(0.3)),
            env_faults: Some(embodied_env::EnvFaultProfile::uniform(0.12)),
            recovery_policy: Some(crate::recovery::RecoveryPolicy::Closed {
                watchdog_window: 5,
                act_retries: 2,
            }),
        };
        let text = full.to_json().render_pretty();
        let back = RunOverrides::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(format!("{back:?}"), format!("{full:?}"));

        // Invalid rates are rejected at parse time, not at run time.
        let mut bad = full.clone();
        bad.channel = Some(crate::faults::ChannelProfile {
            drop: 1.5,
            ..crate::faults::ChannelProfile::none()
        });
        let text = bad.to_json().render_pretty();
        assert!(RunOverrides::from_json(&JsonValue::parse(&text).unwrap()).is_err());

        // Same for the embodied plane: out-of-range rates never reach a run.
        let mut bad_env = full.clone();
        bad_env.env_faults = Some(embodied_env::EnvFaultProfile {
            dropout: -0.2,
            ..embodied_env::EnvFaultProfile::none()
        });
        let text = bad_env.to_json().render_pretty();
        assert!(RunOverrides::from_json(&JsonValue::parse(&text).unwrap()).is_err());
    }
}
