//! Agent- and channel-level fault injection: crash/stall/recover schedules
//! per agent, lossy message channels, and coordinator failover.
//!
//! Where `embodied_llm::FaultProfile` makes individual *LLM calls* fail,
//! this layer makes the *multi-agent system itself* fail: robot processes
//! die mid-episode and reboot, messages are dropped / duplicated / garbled
//! / delivered late, the network partitions, and — for centralized
//! paradigms — the coordinator process can crash outright, optionally
//! recovering via deterministic promotion of a surviving agent.
//!
//! Everything follows the same determinism discipline as the LLM fault
//! layer: all draws come from dedicated seeded streams in a fixed order,
//! and a `none()` profile performs **zero** draws, so fault-free runs stay
//! byte-identical to builds that predate the subsystem.

use embodied_llm::check_rate;
use embodied_profiler::{AgentFaultStats, ChannelStats, FromJson, JsonError, JsonValue, ToJson};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-step agent-process fault probabilities plus recovery/failover
/// parameters. The default ([`AgentFaultProfile::none()`]) injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentFaultProfile {
    /// Per-agent per-step probability the agent process crashes.
    pub crash: f64,
    /// Steps a crashed agent stays down before rejoining.
    pub crash_downtime: usize,
    /// Per-agent per-step probability of a one-step stall (the process
    /// freezes for the step but does not lose state).
    pub stall: f64,
    /// Per-step probability the *coordinator process* crashes
    /// (centralized/hybrid paradigms only; ignored elsewhere).
    pub coordinator_crash: f64,
    /// Whether a surviving agent is promoted to coordinator after a
    /// coordinator crash. Off = the system runs headless for the rest of
    /// the episode (the single-point-of-failure cliff).
    pub failover: bool,
    /// Headless steps tolerated before the failover election fires.
    pub failover_after: usize,
    /// Silent steps after which teammates suspect a peer is down and
    /// re-plan around it (heartbeat staleness threshold).
    pub staleness_after: usize,
}

impl Default for AgentFaultProfile {
    fn default() -> Self {
        Self::none()
    }
}

impl AgentFaultProfile {
    /// No agent faults — systems behave exactly as without injection.
    pub fn none() -> Self {
        AgentFaultProfile {
            crash: 0.0,
            crash_downtime: 3,
            stall: 0.0,
            coordinator_crash: 0.0,
            failover: false,
            failover_after: 1,
            staleness_after: 2,
        }
    }

    /// The sweep profile: agents crash and stall at `rate` (3-step
    /// downtime), and the coordinator crashes at `rate` too. Failover off.
    pub fn uniform(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "agent fault rate out of range: {rate}"
        );
        AgentFaultProfile {
            crash: rate,
            stall: rate,
            coordinator_crash: rate,
            ..Self::none()
        }
    }

    /// [`AgentFaultProfile::uniform`] with coordinator failover enabled.
    pub fn uniform_with_failover(rate: f64) -> Self {
        AgentFaultProfile {
            failover: true,
            ..Self::uniform(rate)
        }
    }

    /// `true` when no fault can ever fire — the runtime state then performs
    /// zero draws and injects nothing.
    pub fn is_none(&self) -> bool {
        self.crash == 0.0 && self.stall == 0.0 && self.coordinator_crash == 0.0
    }

    /// Validated constructor: every rate must be a finite probability in
    /// `[0, 1]`. All deserialization paths go through this.
    pub fn validated(self) -> Result<Self, String> {
        check_rate("crash", self.crash)?;
        check_rate("stall", self.stall)?;
        check_rate("coordinator_crash", self.coordinator_crash)?;
        Ok(self)
    }
}

impl ToJson for AgentFaultProfile {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("crash".into(), JsonValue::Num(self.crash)),
            (
                "crash_downtime".into(),
                JsonValue::Num(self.crash_downtime as f64),
            ),
            ("stall".into(), JsonValue::Num(self.stall)),
            (
                "coordinator_crash".into(),
                JsonValue::Num(self.coordinator_crash),
            ),
            ("failover".into(), JsonValue::Bool(self.failover)),
            (
                "failover_after".into(),
                JsonValue::Num(self.failover_after as f64),
            ),
            (
                "staleness_after".into(),
                JsonValue::Num(self.staleness_after as f64),
            ),
        ])
    }
}

impl FromJson for AgentFaultProfile {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        AgentFaultProfile {
            crash: value.f64_field("crash")?,
            crash_downtime: value.u64_field("crash_downtime")? as usize,
            stall: value.f64_field("stall")?,
            coordinator_crash: value.f64_field("coordinator_crash")?,
            failover: value.bool_field("failover")?,
            failover_after: value.u64_field("failover_after")? as usize,
            staleness_after: value.u64_field("staleness_after")? as usize,
        }
        .validated()
        .map_err(|e| JsonError::msg(format!("AgentFaultProfile: {e}")))
    }
}

/// Per-delivery message-channel fault probabilities. The default
/// ([`ChannelProfile::none()`]) is a perfect network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelProfile {
    /// Probability a message is dropped in flight.
    pub drop: f64,
    /// Probability a delivered message arrives twice.
    pub duplicate: f64,
    /// Probability a delivered message arrives garbled (text unusable,
    /// entity payload lost).
    pub corrupt: f64,
    /// Probability a delivered message is delayed by [`Self::delay_steps`].
    pub delay: f64,
    /// Steps a delayed message waits before delivery.
    pub delay_steps: usize,
    /// Per-step probability a network partition opens (splitting the team
    /// into two halves that cannot exchange messages).
    pub partition: f64,
    /// Steps a partition lasts before healing.
    pub partition_steps: usize,
}

impl Default for ChannelProfile {
    fn default() -> Self {
        Self::none()
    }
}

impl ChannelProfile {
    /// A perfect channel — deliveries behave exactly as without injection.
    pub fn none() -> Self {
        ChannelProfile {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_steps: 2,
            partition: 0.0,
            partition_steps: 3,
        }
    }

    /// A uniformly lossy channel: each delivery is independently dropped,
    /// duplicated, corrupted, or delayed at `rate`, and a 3-step partition
    /// opens each step at `rate / 2`.
    pub fn lossy(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "channel fault rate out of range: {rate}"
        );
        ChannelProfile {
            drop: rate,
            duplicate: rate,
            corrupt: rate,
            delay: rate,
            partition: rate / 2.0,
            ..Self::none()
        }
    }

    /// `true` when the channel can never misbehave — zero draws occur.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
            && self.partition == 0.0
    }

    /// Validated constructor: every rate must be a finite probability in
    /// `[0, 1]`. All deserialization paths go through this.
    pub fn validated(self) -> Result<Self, String> {
        check_rate("drop", self.drop)?;
        check_rate("duplicate", self.duplicate)?;
        check_rate("corrupt", self.corrupt)?;
        check_rate("delay", self.delay)?;
        check_rate("partition", self.partition)?;
        Ok(self)
    }
}

impl ToJson for ChannelProfile {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("drop".into(), JsonValue::Num(self.drop)),
            ("duplicate".into(), JsonValue::Num(self.duplicate)),
            ("corrupt".into(), JsonValue::Num(self.corrupt)),
            ("delay".into(), JsonValue::Num(self.delay)),
            (
                "delay_steps".into(),
                JsonValue::Num(self.delay_steps as f64),
            ),
            ("partition".into(), JsonValue::Num(self.partition)),
            (
                "partition_steps".into(),
                JsonValue::Num(self.partition_steps as f64),
            ),
        ])
    }
}

impl FromJson for ChannelProfile {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        ChannelProfile {
            drop: value.f64_field("drop")?,
            duplicate: value.f64_field("duplicate")?,
            corrupt: value.f64_field("corrupt")?,
            delay: value.f64_field("delay")?,
            delay_steps: value.u64_field("delay_steps")? as usize,
            partition: value.f64_field("partition")?,
            partition_steps: value.u64_field("partition_steps")? as usize,
        }
        .validated()
        .map_err(|e| JsonError::msg(format!("ChannelProfile: {e}")))
    }
}

/// A begin-of-step agent fault event, surfaced so the system can record the
/// matching trace span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AgentFaultEvent {
    /// Agent `id` crashed this step (down for the profile's downtime).
    Crashed(usize),
    /// Agent `id` completed its reboot and rejoined this step.
    Recovered(usize),
    /// The coordinator process crashed this step.
    CoordinatorCrashed,
}

/// Runtime agent-fault state for one episode: who is down, who is stalled,
/// whether the coordinator is alive, and the accumulated stats.
#[derive(Debug)]
pub(crate) struct AgentFaultState {
    profile: AgentFaultProfile,
    rng: StdRng,
    /// Per-agent step at which the agent recovers, while down.
    down_until: Vec<Option<usize>>,
    /// Per-agent one-step stall flags, rebuilt every step.
    stalled: Vec<bool>,
    /// Step the coordinator died, while dead.
    coordinator_down_since: Option<usize>,
    /// Agent id whose host currently runs the coordinator process (0 until
    /// a failover promotes someone else) — also the partition side the
    /// center sits on.
    pub coordinator: usize,
    /// Accumulated counters, copied into the episode report.
    pub stats: AgentFaultStats,
}

impl AgentFaultState {
    /// Builds the state for a team of `n` agents, seeded independently of
    /// every other stream in the episode.
    pub fn new(profile: AgentFaultProfile, seed: u64, n: usize) -> Self {
        AgentFaultState {
            profile,
            rng: StdRng::seed_from_u64(seed ^ 0x00a9_e417_fa17),
            down_until: vec![None; n],
            stalled: vec![false; n],
            coordinator_down_since: None,
            coordinator: 0,
            stats: AgentFaultStats::default(),
        }
    }

    /// The profile this state draws from.
    pub fn profile(&self) -> &AgentFaultProfile {
        &self.profile
    }

    /// Begin-of-step fault draws, in fixed order (recover checks, then
    /// per-agent crash and stall draws, then the coordinator draw), plus
    /// downtime accounting. Returns the events so the caller can record
    /// trace spans. Zero draws under a `none()` profile.
    pub fn begin_step(&mut self, step: usize, has_coordinator: bool) -> Vec<AgentFaultEvent> {
        let mut events = Vec::new();
        for s in &mut self.stalled {
            *s = false;
        }
        if self.profile.is_none() {
            return events;
        }
        for i in 0..self.down_until.len() {
            if let Some(until) = self.down_until[i] {
                if step >= until {
                    self.down_until[i] = None;
                    self.stats.recoveries += 1;
                    events.push(AgentFaultEvent::Recovered(i));
                }
            }
            if self.down_until[i].is_none() {
                if self.profile.crash > 0.0 && self.rng.gen_bool(self.profile.crash.min(1.0)) {
                    self.down_until[i] = Some(step + self.profile.crash_downtime.max(1));
                    self.stats.crashes += 1;
                    events.push(AgentFaultEvent::Crashed(i));
                } else if self.profile.stall > 0.0 && self.rng.gen_bool(self.profile.stall.min(1.0))
                {
                    self.stalled[i] = true;
                    self.stats.stalls += 1;
                }
            }
            if self.down_until[i].is_some() {
                self.stats.downtime_steps += 1;
            }
        }
        if has_coordinator
            && self.coordinator_down_since.is_none()
            && self.profile.coordinator_crash > 0.0
            && self.rng.gen_bool(self.profile.coordinator_crash.min(1.0))
        {
            self.coordinator_down_since = Some(step);
            self.stats.coordinator_crashes += 1;
            events.push(AgentFaultEvent::CoordinatorCrashed);
        }
        events
    }

    /// Whether agent `i` is crashed (skips sense/plan/execute).
    pub fn is_down(&self, i: usize) -> bool {
        self.down_until[i].is_some()
    }

    /// Whether agent `i` is frozen for just this step.
    pub fn is_stalled(&self, i: usize) -> bool {
        self.stalled[i]
    }

    /// Whether agent `i` participates in this step at all.
    pub fn is_active(&self, i: usize) -> bool {
        !self.is_down(i) && !self.is_stalled(i)
    }

    /// Whether the coordinator process is currently dead.
    pub fn coordinator_down(&self) -> bool {
        self.coordinator_down_since.is_some()
    }

    /// Counts one headless step (coordinator dead, no failover yet).
    pub fn note_headless_step(&mut self) {
        self.stats.coordinator_down_steps += 1;
    }

    /// Failover election: once the coordinator has been dead for the
    /// profile's tolerance, promote the surviving agent with the **lowest
    /// id** — a deterministic rule every replica of the episode agrees on.
    /// Returns the promoted agent id, or `None` (failover disabled, still
    /// within tolerance, or nobody left alive).
    pub fn maybe_failover(&mut self, step: usize) -> Option<usize> {
        let since = self.coordinator_down_since?;
        if !self.profile.failover || step.saturating_sub(since) < self.profile.failover_after {
            return None;
        }
        let survivor = (0..self.down_until.len()).find(|&i| !self.is_down(i))?;
        self.coordinator_down_since = None;
        self.coordinator = survivor;
        self.stats.failovers += 1;
        Some(survivor)
    }
}

/// How the channel treated one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeliveryFate {
    /// Deliver `copies` copies (2 on duplication), garbled when `corrupt`,
    /// after `delay` extra steps (0 = now).
    Deliver {
        copies: usize,
        corrupt: bool,
        delay: usize,
    },
    /// Dropped in flight.
    Dropped,
    /// Blocked at a partition cut.
    Blocked,
}

/// A message the channel is holding for late delivery.
#[derive(Debug, Clone)]
pub(crate) struct DelayedMessage {
    /// Step at (or after) which the message arrives.
    pub deliver_at: usize,
    /// Recipient agent id.
    pub to: usize,
    /// Message text (already garbled if the delivery was also corrupted).
    pub text: String,
    /// Entity payload (empty if corrupted).
    pub entities: Vec<String>,
    /// Copies to deliver (2 if the delivery was also duplicated).
    pub copies: usize,
}

/// Runtime channel state for one episode: the partition window, the
/// delayed-message queue, and the accumulated stats.
#[derive(Debug)]
pub(crate) struct ChannelState {
    profile: ChannelProfile,
    rng: StdRng,
    /// Step at which the active partition heals, while partitioned.
    partition_until: Option<usize>,
    /// Messages in flight past their send step.
    pub delayed: Vec<DelayedMessage>,
    /// Accumulated counters, copied into the episode report.
    pub stats: ChannelStats,
}

impl ChannelState {
    /// Builds the state, seeded independently of every other stream.
    pub fn new(profile: ChannelProfile, seed: u64) -> Self {
        ChannelState {
            profile,
            rng: StdRng::seed_from_u64(seed ^ 0x00c4_a22e_15ed),
            partition_until: None,
            delayed: Vec::new(),
            stats: ChannelStats::default(),
        }
    }

    /// The profile this state draws from.
    pub fn profile(&self) -> &ChannelProfile {
        &self.profile
    }

    /// Begin-of-step partition bookkeeping: heal an expired partition, then
    /// (at most one draw) maybe open a new one. Zero draws under `none()`.
    pub fn begin_step(&mut self, step: usize) {
        // Heal first (draw-free) so a profile zeroed mid-episode still lets
        // an open partition expire; only the open-a-new-one draw is gated.
        if let Some(until) = self.partition_until {
            if step >= until {
                self.partition_until = None;
            }
        }
        if self.profile.is_none() {
            return;
        }
        if self.partition_until.is_none()
            && self.profile.partition > 0.0
            && self.rng.gen_bool(self.profile.partition.min(1.0))
        {
            self.partition_until = Some(step + self.profile.partition_steps.max(1));
            self.stats.partitions += 1;
        }
        if self.partition_until.is_some() {
            self.stats.partition_steps += 1;
        }
    }

    /// Whether a partition currently splits the team.
    pub fn partitioned(&self) -> bool {
        self.partition_until.is_some()
    }

    /// Partition side of agent `from_host` in a team of `n`: the cut always
    /// splits the team at `n / 2` (lower half vs. upper half), so every
    /// replica of the episode agrees on the topology.
    fn same_side(from_host: usize, to: usize, n: usize) -> bool {
        let cut = (n / 2).max(1);
        (from_host < cut) == (to < cut)
    }

    /// Samples the fate of one delivery from the host of agent `from_host`
    /// to agent `to`, in fixed draw order (partition check, drop, corrupt,
    /// duplicate, delay). For center-originated traffic, pass the
    /// coordinator's agent id as `from_host` — the center shares its host's
    /// partition side. Zero draws under a `none()` profile.
    pub fn fate(&mut self, from_host: usize, to: usize, n: usize) -> DeliveryFate {
        if self.profile.is_none() {
            return DeliveryFate::Deliver {
                copies: 1,
                corrupt: false,
                delay: 0,
            };
        }
        if self.partitioned() && !Self::same_side(from_host, to, n) {
            self.stats.partition_blocked += 1;
            return DeliveryFate::Blocked;
        }
        if self.profile.drop > 0.0 && self.rng.gen_bool(self.profile.drop.min(1.0)) {
            self.stats.dropped += 1;
            return DeliveryFate::Dropped;
        }
        let corrupt =
            self.profile.corrupt > 0.0 && self.rng.gen_bool(self.profile.corrupt.min(1.0));
        if corrupt {
            self.stats.corrupted += 1;
        }
        let copies =
            if self.profile.duplicate > 0.0 && self.rng.gen_bool(self.profile.duplicate.min(1.0)) {
                self.stats.duplicated += 1;
                2
            } else {
                1
            };
        let delay = if self.profile.delay > 0.0 && self.rng.gen_bool(self.profile.delay.min(1.0)) {
            self.stats.delayed += 1;
            self.profile.delay_steps.max(1)
        } else {
            0
        };
        DeliveryFate::Deliver {
            copies,
            corrupt,
            delay,
        }
    }

    /// Whether a heartbeat from agent `from` reaches agent `to` — drops and
    /// partitions apply; duplication/corruption/delay do not (a late or
    /// garbled heartbeat still proves liveness). Lost heartbeats feed false
    /// peer suspicions. Zero draws under a `none()` profile.
    pub fn heartbeat_delivered(&mut self, from: usize, to: usize, n: usize) -> bool {
        if self.profile.is_none() {
            return true;
        }
        if self.partitioned() && !Self::same_side(from, to, n) {
            self.stats.heartbeats_lost += 1;
            return false;
        }
        if self.profile.drop > 0.0 && self.rng.gen_bool(self.profile.drop.min(1.0)) {
            self.stats.heartbeats_lost += 1;
            return false;
        }
        true
    }

    /// Drains the delayed messages due at `step`, in queue order.
    pub fn due_messages(&mut self, step: usize) -> Vec<DelayedMessage> {
        let mut due = Vec::new();
        let mut kept = Vec::new();
        for msg in self.delayed.drain(..) {
            if msg.deliver_at <= step {
                due.push(msg);
            } else {
                kept.push(msg);
            }
        }
        self.delayed = kept;
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_profiles_never_draw() {
        // Observed the same way as the LLM injector: run the "none" state,
        // swap a live profile in, and check the stream still matches a
        // fresh state's — proving zero draws were consumed.
        let mut state = AgentFaultState::new(AgentFaultProfile::none(), 7, 4);
        for step in 0..50 {
            assert!(state.begin_step(step, true).is_empty());
        }
        assert!(state.stats.is_quiet());
        state.profile = AgentFaultProfile::uniform(0.5);
        let mut fresh = AgentFaultState::new(AgentFaultProfile::uniform(0.5), 7, 4);
        for step in 0..20 {
            assert_eq!(state.begin_step(step, true), fresh.begin_step(step, true));
        }

        let mut chan = ChannelState::new(ChannelProfile::none(), 9);
        for step in 0..50 {
            chan.begin_step(step);
            assert_eq!(
                chan.fate(0, 1, 4),
                DeliveryFate::Deliver {
                    copies: 1,
                    corrupt: false,
                    delay: 0
                }
            );
            assert!(chan.heartbeat_delivered(0, 1, 4));
        }
        assert!(chan.stats.is_quiet());
        chan.profile = ChannelProfile::lossy(0.5);
        let mut fresh = ChannelState::new(ChannelProfile::lossy(0.5), 9);
        for step in 0..20 {
            chan.begin_step(step);
            fresh.begin_step(step);
            assert_eq!(chan.fate(0, 1, 4), fresh.fate(0, 1, 4));
        }
    }

    #[test]
    fn crashes_recover_after_downtime() {
        let profile = AgentFaultProfile {
            crash: 1.0,
            crash_downtime: 2,
            ..AgentFaultProfile::none()
        };
        let mut state = AgentFaultState::new(profile, 3, 1);
        let events = state.begin_step(0, false);
        assert_eq!(events, vec![AgentFaultEvent::Crashed(0)]);
        assert!(state.is_down(0));
        assert!(state.begin_step(1, false).is_empty());
        assert!(state.is_down(0));
        // Step 2: recovers, then (crash = 1.0) immediately crashes again.
        let events = state.begin_step(2, false);
        assert_eq!(
            events,
            vec![AgentFaultEvent::Recovered(0), AgentFaultEvent::Crashed(0)]
        );
        assert_eq!(state.stats.recoveries, 1);
        assert_eq!(state.stats.crashes, 2);
        assert_eq!(state.stats.downtime_steps, 3);
    }

    #[test]
    fn failover_promotes_lowest_alive_id() {
        let profile = AgentFaultProfile {
            coordinator_crash: 1.0,
            failover: true,
            failover_after: 1,
            ..AgentFaultProfile::none()
        };
        let mut state = AgentFaultState::new(profile, 5, 3);
        let events = state.begin_step(0, true);
        assert_eq!(events, vec![AgentFaultEvent::CoordinatorCrashed]);
        assert!(state.coordinator_down());
        // Still within tolerance on the crash step.
        assert_eq!(state.maybe_failover(0), None);
        // Agent 0 is down: the next-lowest survivor wins the election.
        state.down_until[0] = Some(10);
        assert_eq!(state.maybe_failover(1), Some(1));
        assert!(!state.coordinator_down());
        assert_eq!(state.coordinator, 1);
        assert_eq!(state.stats.failovers, 1);
    }

    #[test]
    fn failover_disabled_stays_headless() {
        let profile = AgentFaultProfile {
            coordinator_crash: 1.0,
            ..AgentFaultProfile::none()
        };
        let mut state = AgentFaultState::new(profile, 5, 2);
        state.begin_step(0, true);
        for step in 0..20 {
            assert_eq!(state.maybe_failover(step), None);
        }
        assert!(state.coordinator_down());
    }

    #[test]
    fn stalls_last_exactly_one_step() {
        let profile = AgentFaultProfile {
            stall: 1.0,
            ..AgentFaultProfile::none()
        };
        let mut state = AgentFaultState::new(profile, 11, 2);
        state.begin_step(0, false);
        assert!(state.is_stalled(0) && state.is_stalled(1));
        assert!(!state.is_down(0));
        // Flags are rebuilt every step; a zero-stall profile clears them.
        state.profile.stall = 0.0;
        state.begin_step(1, false);
        assert!(!state.is_stalled(0) && !state.is_stalled(1));
        assert_eq!(state.stats.stalls, 2);
    }

    #[test]
    fn partitions_block_cross_side_traffic_then_heal() {
        let profile = ChannelProfile {
            partition: 1.0,
            partition_steps: 2,
            ..ChannelProfile::none()
        };
        let mut chan = ChannelState::new(profile, 13);
        chan.begin_step(0);
        assert!(chan.partitioned());
        // 4 agents: sides {0,1} and {2,3}.
        assert_eq!(chan.fate(0, 2, 4), DeliveryFate::Blocked);
        assert!(matches!(chan.fate(0, 1, 4), DeliveryFate::Deliver { .. }));
        assert!(!chan.heartbeat_delivered(1, 3, 4));
        assert!(chan.heartbeat_delivered(2, 3, 4));
        // Heals at step 2 — but partition = 1.0 immediately reopens it, so
        // drop the rate first to observe the heal.
        chan.profile.partition = 0.0;
        chan.begin_step(2);
        assert!(!chan.partitioned());
        assert!(matches!(chan.fate(0, 2, 4), DeliveryFate::Deliver { .. }));
        assert_eq!(chan.stats.partitions, 1);
        assert_eq!(chan.stats.partition_blocked, 1);
        assert_eq!(chan.stats.heartbeats_lost, 1);
    }

    #[test]
    fn duplication_off_never_produces_extra_copies() {
        let profile = ChannelProfile {
            drop: 0.3,
            corrupt: 0.3,
            delay: 0.3,
            duplicate: 0.0,
            ..ChannelProfile::none()
        };
        let mut chan = ChannelState::new(profile, 17);
        for step in 0..200 {
            chan.begin_step(step);
            if let DeliveryFate::Deliver { copies, .. } = chan.fate(0, 1, 2) {
                assert_eq!(copies, 1);
            }
        }
        assert_eq!(chan.stats.duplicated, 0);
    }

    #[test]
    fn delayed_queue_releases_in_order_at_due_step() {
        let mut chan = ChannelState::new(ChannelProfile::none(), 1);
        chan.delayed.push(DelayedMessage {
            deliver_at: 3,
            to: 1,
            text: "late".into(),
            entities: vec![],
            copies: 1,
        });
        chan.delayed.push(DelayedMessage {
            deliver_at: 5,
            to: 0,
            text: "later".into(),
            entities: vec![],
            copies: 1,
        });
        assert!(chan.due_messages(2).is_empty());
        let due = chan.due_messages(3);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].text, "late");
        assert_eq!(chan.delayed.len(), 1);
        let due = chan.due_messages(9);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].to, 0);
    }

    #[test]
    fn identical_seeds_replay_identical_schedules() {
        let run = |seed| {
            let mut state = AgentFaultState::new(AgentFaultProfile::uniform(0.3), seed, 4);
            let mut log = Vec::new();
            for step in 0..100 {
                log.push(state.begin_step(step, true));
            }
            (log, state.stats)
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21).0, run(22).0);
    }
}
