//! Planning module: assembles the prompt, runs the (simulated) LLM, and
//! resolves the decision against the environment's oracle.
//!
//! The decision rule is the suite's central simulation device: the LLM's
//! sampled quality decides whether the agent follows the ground-truth
//! oracle or draws a wrong candidate — so success rates, wasted steps and
//! replanning loops all flow from the quality model.

use crate::prompt::PromptWriter;
use embodied_env::Subgoal;
use embodied_llm::{EngineHandle, InferenceOpts, LlmError, LlmRequest, LlmResponse, Purpose};
use std::fmt::Write as _;

/// Everything the planner needs for one decision.
#[derive(Debug, Clone)]
pub struct PlanContext<'a> {
    /// Workload system preamble.
    pub preamble: &'a str,
    /// Natural-language goal.
    pub goal: &'a str,
    /// Sensing output text.
    pub percept_text: &'a str,
    /// Retrieved memory text.
    pub memory_text: &'a str,
    /// Concatenated dialogue history (multi-agent systems).
    pub dialogue_text: &'a str,
    /// Ground-truth useful subgoals, already knowledge-filtered.
    pub oracle: Vec<Subgoal>,
    /// Full candidate menu, already knowledge-filtered.
    pub candidates: Vec<Subgoal>,
    /// Task difficulty scalar.
    pub difficulty: f64,
    /// Per-call inference options.
    pub opts: InferenceOpts,
    /// Extra quality penalty (memory inconsistency, truncated context, …).
    pub quality_penalty: f64,
    /// The previously failed subgoal, if reflection did not clear it: wrong
    /// decisions are biased toward repeating it (the paper's "stuck in
    /// loops of invalid operations").
    pub repeat_bias: Option<Subgoal>,
    /// Consecutive unresolved failures behind `repeat_bias`; the longer the
    /// streak, the stronger the pull of the loop.
    pub failure_streak: usize,
}

/// The planner's decision.
#[derive(Debug, Clone)]
pub struct PlanDecision {
    /// The chosen subgoal.
    pub subgoal: Subgoal,
    /// Whether the decision followed the oracle (correct reasoning).
    pub followed_oracle: bool,
    /// The LLM response behind the decision.
    pub response: LlmResponse,
}

/// The planning module, holding one tenant handle onto the shared
/// inference service.
#[derive(Debug, Clone)]
pub struct PlanningModule {
    engine: EngineHandle,
    /// Prompt assembly buffer, reused across steps so prompt capacity is
    /// paid once per episode instead of once per decision.
    prompt_buf: String,
}

impl PlanningModule {
    /// Wraps an engine handle; a bare [`embodied_llm::LlmEngine`] or
    /// [`embodied_llm::ResilientEngine`] converts via a private
    /// single-tenant pass-through service.
    pub fn new(engine: impl Into<EngineHandle>) -> Self {
        PlanningModule {
            engine: engine.into(),
            prompt_buf: String::new(),
        }
    }

    /// Read access to the engine (usage and resilience counters).
    pub fn engine(&self) -> &EngineHandle {
        &self.engine
    }

    /// Mutable access to the engine, for callers that drive raw inference
    /// through the planner's deployment (central planners, micro-control).
    pub fn engine_mut(&mut self) -> &mut EngineHandle {
        &mut self.engine
    }

    /// Builds the planning prompt for a context.
    pub fn build_prompt(ctx: &PlanContext<'_>) -> String {
        let mut out = String::new();
        Self::write_prompt(ctx, &mut out);
        out
    }

    /// Renders the planning prompt into a reusable buffer.
    fn write_prompt(ctx: &PlanContext<'_>, out: &mut String) {
        PromptWriter::new(out, ctx.preamble)
            .push("task goal", ctx.goal)
            .push("current observation", ctx.percept_text)
            .push("memory", ctx.memory_text)
            .push("dialogue", ctx.dialogue_text)
            .push_candidates(&ctx.candidates);
    }

    /// Makes one planning decision.
    ///
    /// # Errors
    ///
    /// Propagates [`LlmError`] from the engine (empty prompt).
    pub fn plan(&mut self, ctx: &PlanContext<'_>) -> Result<PlanDecision, LlmError> {
        Self::write_prompt(ctx, &mut self.prompt_buf);
        let expected_output = if ctx.opts.multiple_choice { 8 } else { 190 };
        let response = self.engine.infer(
            LlmRequest::new(Purpose::Planning, self.prompt_buf.as_str(), expected_output)
                .with_difficulty(ctx.difficulty)
                .with_opts(ctx.opts),
        )?;
        // An unresolved failure exerts a direct pull: the model re-emits its
        // previous (failed) output with probability growing along the
        // streak. Reflection breaks the loop by clearing the failure.
        if let Some(repeat) = &ctx.repeat_bias {
            let p_loop = (0.55 + 0.2 * ctx.failure_streak as f64).min(0.9);
            if self.engine.sample_correct(p_loop) {
                return Ok(PlanDecision {
                    subgoal: repeat.clone(),
                    followed_oracle: false,
                    response,
                });
            }
        }
        let quality =
            (response.quality * (1.0 - ctx.quality_penalty.clamp(0.0, 1.0))).clamp(0.02, 0.99);
        let correct = self.engine.sample_correct(quality) && !ctx.oracle.is_empty();
        let subgoal = if correct {
            ctx.oracle[0].clone()
        } else {
            self.wrong_choice(ctx)
        };
        Ok(PlanDecision {
            subgoal,
            followed_oracle: correct,
            response,
        })
    }

    /// A second action-selection pass (CoELA's third LLM run per step):
    /// costs another inference, and gives a wrong plan a chance to be
    /// corrected back onto the oracle.
    ///
    /// # Errors
    ///
    /// Propagates [`LlmError`] from the engine.
    pub fn select_action(
        &mut self,
        ctx: &PlanContext<'_>,
        decision: PlanDecision,
    ) -> Result<PlanDecision, LlmError> {
        Self::write_prompt(ctx, &mut self.prompt_buf);
        let _ = write!(
            self.prompt_buf,
            "\n[proposed plan]\n{}\nConfirm or pick the best action.",
            decision.subgoal
        );
        let response = self.engine.infer(
            LlmRequest::new(Purpose::ActionSelection, self.prompt_buf.as_str(), 24)
                .with_difficulty(ctx.difficulty)
                .with_opts(ctx.opts),
        )?;
        if decision.followed_oracle || ctx.oracle.is_empty() {
            // Selection confirms a good plan; bill the latency only.
            return Ok(PlanDecision {
                response,
                ..decision
            });
        }
        // Recovery chance: selection re-derives the right action.
        let recovered = self.engine.sample_correct(response.quality * 0.7);
        if recovered {
            Ok(PlanDecision {
                subgoal: ctx.oracle[0].clone(),
                followed_oracle: true,
                response,
            })
        } else {
            Ok(PlanDecision {
                response,
                ..decision
            })
        }
    }

    fn wrong_choice(&mut self, ctx: &PlanContext<'_>) -> Subgoal {
        // Failure mode 1: perseveration — repeat the recently failed action
        // (LLMs disproportionately re-emit their previous output).
        if let Some(repeat) = &ctx.repeat_bias {
            if self.engine.sample_correct(0.65) {
                return repeat.clone();
            }
        }
        // Failure mode 2: plausible-but-wrong draw from the menu. LLMs
        // confabulate *active* plans — they almost never answer "wait" — so
        // idle candidates are drawn only when nothing else is on the menu.
        let active: Vec<&Subgoal> = ctx.candidates.iter().filter(|sg| !sg.is_idle()).collect();
        if let Some(pick) = active.is_empty().then(|| ctx.candidates.first()).flatten() {
            return pick.clone();
        }
        if active.is_empty() {
            return Subgoal::Explore;
        }
        active[self.engine.sample_index(active.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embodied_llm::{LlmEngine, ModelProfile};

    fn ctx<'a>(oracle: &'a [Subgoal], candidates: &'a [Subgoal]) -> PlanContext<'a> {
        PlanContext {
            preamble: "you are a planner",
            goal: "deliver all objects",
            percept_text: "you see object_1",
            memory_text: "",
            dialogue_text: "",
            oracle: oracle.to_vec(),
            candidates: candidates.to_vec(),
            difficulty: 0.3,
            opts: InferenceOpts::default(),
            quality_penalty: 0.0,
            repeat_bias: None,
            failure_streak: 0,
        }
    }

    fn goto() -> Subgoal {
        Subgoal::GoTo {
            target: "object_1".into(),
            cell: embodied_exec::Cell::new(3, 3),
        }
    }

    #[test]
    fn gpt4_mostly_follows_oracle_on_easy_tasks() {
        let mut p = PlanningModule::new(LlmEngine::new(ModelProfile::gpt4_api(), 1));
        let oracle = [goto()];
        let candidates = [goto(), Subgoal::Explore, Subgoal::Wait];
        let followed = (0..100)
            .filter(|_| p.plan(&ctx(&oracle, &candidates)).unwrap().followed_oracle)
            .count();
        assert!(followed > 70, "GPT-4 followed oracle only {followed}/100");
    }

    #[test]
    fn small_model_errs_more() {
        let candidates = [goto(), Subgoal::Explore, Subgoal::Wait];
        let oracle = [goto()];
        let count_followed = |profile: ModelProfile| {
            let mut p = PlanningModule::new(LlmEngine::new(profile, 5));
            (0..150)
                .filter(|_| {
                    let mut c = ctx(&oracle, &candidates);
                    c.difficulty = 0.7;
                    p.plan(&c).unwrap().followed_oracle
                })
                .count()
        };
        let gpt4 = count_followed(ModelProfile::gpt4_api());
        let llama = count_followed(ModelProfile::llama3_8b());
        assert!(
            gpt4 > llama + 20,
            "expected a clear gap: gpt4 {gpt4} vs llama {llama}"
        );
    }

    #[test]
    fn empty_oracle_never_reports_oracle_followed() {
        let mut p = PlanningModule::new(LlmEngine::new(ModelProfile::gpt4_api(), 2));
        let candidates = [Subgoal::Explore, Subgoal::Wait];
        for _ in 0..20 {
            let d = p.plan(&ctx(&[], &candidates)).unwrap();
            assert!(!d.followed_oracle);
        }
    }

    #[test]
    fn empty_candidates_fall_back_to_explore() {
        let mut p = PlanningModule::new(LlmEngine::new(ModelProfile::llama3_8b(), 3));
        // Force wrong branch by zero-capability-ish difficulty + penalty.
        let mut c = ctx(&[], &[]);
        c.quality_penalty = 1.0;
        let d = p.plan(&c).unwrap();
        assert_eq!(d.subgoal, Subgoal::Explore);
    }

    #[test]
    fn repeat_bias_produces_perseveration() {
        let mut p = PlanningModule::new(LlmEngine::new(ModelProfile::llama3_8b(), 7));
        let failed = Subgoal::Pick {
            object: "ghost".into(),
        };
        let candidates = [Subgoal::Explore, Subgoal::Wait, goto()];
        let mut c = ctx(&[], &candidates);
        c.quality_penalty = 1.0; // always wrong
        c.repeat_bias = Some(failed.clone());
        c.failure_streak = 2;
        let repeats = (0..100)
            .filter(|_| p.plan(&c).unwrap().subgoal == failed)
            .count();
        assert!(
            repeats >= 75,
            "expected strong perseveration, got {repeats}/100"
        );
    }

    #[test]
    fn quality_penalty_reduces_oracle_following() {
        let oracle = [goto()];
        let candidates = [goto(), Subgoal::Explore];
        let follow_rate = |penalty: f64| {
            let mut p = PlanningModule::new(LlmEngine::new(ModelProfile::gpt4_api(), 11));
            (0..150)
                .filter(|_| {
                    let mut c = ctx(&oracle, &candidates);
                    c.quality_penalty = penalty;
                    p.plan(&c).unwrap().followed_oracle
                })
                .count()
        };
        assert!(follow_rate(0.0) > follow_rate(0.6) + 30);
    }

    #[test]
    fn action_selection_can_recover_wrong_plans() {
        let oracle = [goto()];
        let candidates = [goto(), Subgoal::Explore, Subgoal::Wait];
        let mut p = PlanningModule::new(LlmEngine::new(ModelProfile::gpt4_api(), 13));
        let mut recovered = 0;
        let mut wrong = 0;
        for _ in 0..200 {
            let c = ctx(&oracle, &candidates);
            let d = p.plan(&c).unwrap();
            if !d.followed_oracle {
                wrong += 1;
                let d2 = p.select_action(&c, d).unwrap();
                if d2.followed_oracle {
                    recovered += 1;
                }
            }
        }
        assert!(wrong > 0, "need some wrong plans to test recovery");
        assert!(recovered > 0, "selection should recover some plans");
    }

    #[test]
    fn prompt_contains_all_sections() {
        let oracle = [goto()];
        let candidates = [goto()];
        let mut c = ctx(&oracle, &candidates);
        c.memory_text = "step 3: saw object_1";
        c.dialogue_text = "agent 1: I am exploring room_2";
        let prompt = PlanningModule::build_prompt(&c);
        for needle in [
            "[system]",
            "[task goal]",
            "[current observation]",
            "[memory]",
            "[dialogue]",
            "[available actions]",
            "go to object_1",
        ] {
            assert!(prompt.contains(needle), "missing {needle}");
        }
    }
}
