//! The six building-block modules of an embodied agent (paper §II-A).

mod communication;
mod execution;
mod mapping;
mod memory;
mod planning;
mod reflection;
mod sensing;

pub use communication::{CommunicationModule, OutgoingMessage};
pub use execution::{ExecMode, ExecutionModule, ExecutionReport};
pub use mapping::{LocationKnowledge, WorldMap};
pub use memory::{
    MemoryModule, MemoryRecord, RecordKind, Retrieval, RetrievalMode, RetrievalStats,
};
pub use planning::{PlanContext, PlanDecision, PlanningModule};
pub use reflection::{ReflectionModule, ReflectionVerdict};
pub use sensing::{Percept, SensingModule};
