//! Execution module: drives the environment's low-level physics through a
//! proper controller — or, when disabled (Fig. 3's ablation), forces the
//! LLM to micro-manage primitives at crippled competence and extra
//! inference cost (paper §IV-B: "vastly expanding the decision space and
//! slowing down the inference process").

use embodied_env::{Environment, ExecOutcome, LowLevel, Subgoal};
use embodied_llm::{InferenceEndpoint, InferenceOpts, LlmError, LlmRequest, LlmResponse, Purpose};
use serde::{Deserialize, Serialize};

/// Extra LLM micro-control calls per subgoal when execution is disabled.
const MICRO_CALLS: usize = 2;

/// How the low-level layer is being driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// A dedicated controller executes primitives (the normal case).
    Controller,
    /// The planning LLM emits raw primitives (execution module disabled).
    LlmMicro,
}

/// Result of executing one subgoal, including any LLM micro-control bills.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The environment-level outcome.
    pub outcome: ExecOutcome,
    /// LLM responses incurred by micro-control (empty in controller mode).
    pub micro_responses: Vec<LlmResponse>,
    /// Whether a micro-control call ultimately failed and the primitive was
    /// driven without its guidance (graceful degradation).
    pub degraded: bool,
}

/// The execution module.
#[derive(Debug)]
pub struct ExecutionModule {
    low: LowLevel,
    mode: ExecMode,
}

impl ExecutionModule {
    /// A controller-backed execution module.
    pub fn controller(seed: u64) -> Self {
        Self::controller_scaled(seed, 1.0)
    }

    /// A controller whose low-level planning compute is scaled (joint-space
    /// planners bill more work per trajectory).
    pub fn controller_scaled(seed: u64, compute_scale: f64) -> Self {
        Self::controller_configured(seed, compute_scale, 0.97)
    }

    /// Full controller configuration: compute scale plus per-attempt
    /// actuation reliability (failure injection).
    pub fn controller_configured(seed: u64, compute_scale: f64, reliability: f64) -> Self {
        let mut low = LowLevel::controller_with_reliability(seed, reliability);
        low.compute_scale = compute_scale.max(0.0);
        ExecutionModule {
            low,
            mode: ExecMode::Controller,
        }
    }

    /// Selects the sampling-based trajectory planner (design ablation).
    pub fn with_trajectory_planner(mut self, planner: embodied_env::TrajectoryPlanner) -> Self {
        self.low.trajectory_planner = planner;
        self
    }

    /// Enables the AnyGrasp-style pick pipeline (DaDu-E).
    pub fn with_grasp_pipeline(mut self, enabled: bool) -> Self {
        self.low.grasp_pipeline = enabled;
        self
    }

    /// The execution-disabled variant: LLM micro-control with competence
    /// derived from the planner's capability.
    pub fn llm_micro(seed: u64, planner_capability: f64) -> Self {
        ExecutionModule {
            low: LowLevel::llm_micro(seed, planner_capability),
            mode: ExecMode::LlmMicro,
        }
    }

    /// Current drive mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Executes `subgoal` for `agent` against the environment.
    ///
    /// In [`ExecMode::LlmMicro`], each subgoal additionally costs
    /// micro-control inference runs on `planner_engine` (any
    /// [`InferenceEndpoint`] — a raw engine or a resilient wrapper), billed
    /// to the caller via [`ExecutionReport::micro_responses`]. A transient
    /// micro-call fault that survives the endpoint's own retries degrades
    /// gracefully: the primitive is driven without that call's guidance and
    /// the report is flagged [`ExecutionReport::degraded`].
    ///
    /// # Errors
    ///
    /// Propagates non-transient [`LlmError`]s (empty prompt — a caller bug).
    pub fn execute<E: InferenceEndpoint>(
        &mut self,
        env: &mut dyn Environment,
        agent: usize,
        subgoal: &Subgoal,
        planner_engine: &mut E,
        difficulty: f64,
        opts: InferenceOpts,
    ) -> Result<ExecutionReport, LlmError> {
        let mut micro_responses = Vec::new();
        let mut degraded = false;
        if self.mode == ExecMode::LlmMicro {
            for i in 0..MICRO_CALLS {
                let prompt = format!(
                    "[system]\nYou must now output raw low-level motor \
                     primitives (joint targets, base velocities) to carry \
                     out: {subgoal}. Micro-step {i}: enumerate the next \
                     primitive and its parameters given the kinematic state."
                );
                match planner_engine.infer(
                    LlmRequest::new(Purpose::ActionSelection, &prompt, 80)
                        .with_difficulty((difficulty + 0.3).min(1.0))
                        .with_opts(opts),
                ) {
                    Ok(resp) => micro_responses.push(resp),
                    Err(err) if err.is_transient() => degraded = true,
                    Err(err) => return Err(err),
                }
            }
        }
        let outcome = env.execute(agent, subgoal, &mut self.low);
        Ok(ExecutionReport {
            outcome,
            micro_responses,
            degraded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embodied_env::{TaskDifficulty, TransportEnv};
    use embodied_llm::{LlmEngine, ModelProfile};

    fn setup() -> (TransportEnv, LlmEngine) {
        (
            TransportEnv::new(TaskDifficulty::Easy, 1, 0),
            LlmEngine::new(ModelProfile::gpt4_api(), 0),
        )
    }

    #[test]
    fn controller_mode_makes_no_llm_calls() {
        let (mut env, mut engine) = setup();
        let mut exec = ExecutionModule::controller(1);
        let sg = env.oracle_subgoals(0)[0].clone();
        let report = exec
            .execute(&mut env, 0, &sg, &mut engine, 0.3, InferenceOpts::default())
            .unwrap();
        assert!(report.micro_responses.is_empty());
        assert_eq!(engine.usage().calls, 0);
        assert!(report.outcome.total_time() > embodied_profiler::SimDuration::ZERO);
    }

    #[test]
    fn llm_micro_bills_inference_and_degrades() {
        let (mut env, mut engine) = setup();
        let mut exec = ExecutionModule::llm_micro(1, 0.9);
        let sg = env.oracle_subgoals(0)[0].clone();
        let report = exec
            .execute(&mut env, 0, &sg, &mut engine, 0.3, InferenceOpts::default())
            .unwrap();
        assert_eq!(report.micro_responses.len(), MICRO_CALLS);
        assert_eq!(engine.usage().calls, MICRO_CALLS as u64);
        assert_eq!(exec.mode(), ExecMode::LlmMicro);
    }

    #[test]
    fn llm_micro_rarely_completes_long_navigation() {
        // Over many fresh environments, micro-controlled GoTo across rooms
        // should complete far less often than the controller.
        let mut micro_ok = 0;
        let mut ctrl_ok = 0;
        for seed in 0..30 {
            let mut env = TransportEnv::new(TaskDifficulty::Easy, 1, seed);
            let mut engine = LlmEngine::new(ModelProfile::gpt4_api(), seed);
            let sg = env.oracle_subgoals(0)[0].clone();
            let mut exec = ExecutionModule::llm_micro(seed, 0.9);
            if exec
                .execute(&mut env, 0, &sg, &mut engine, 0.3, InferenceOpts::default())
                .unwrap()
                .outcome
                .completed
            {
                micro_ok += 1;
            }
            let mut env = TransportEnv::new(TaskDifficulty::Easy, 1, seed);
            let mut exec = ExecutionModule::controller(seed);
            if exec
                .execute(&mut env, 0, &sg, &mut engine, 0.3, InferenceOpts::default())
                .unwrap()
                .outcome
                .completed
            {
                ctrl_ok += 1;
            }
        }
        assert!(
            ctrl_ok > micro_ok + 10,
            "controller {ctrl_ok}/30 vs micro {micro_ok}/30"
        );
    }
}
