//! Reflection module: compares intended vs. actual outcomes and, when it
//! catches an error, cleans up the agent's beliefs so planning does not
//! loop on invalid operations (paper §II-A, Fig. 3).

use crate::prompt::PromptWriter;
use embodied_env::{ExecOutcome, Subgoal};
use embodied_llm::{EngineHandle, InferenceOpts, LlmError, LlmRequest, LlmResponse, Purpose};

/// Reflection's judgement of the last action.
#[derive(Debug, Clone, PartialEq)]
pub struct ReflectionVerdict {
    /// Whether the module correctly recognized the failure.
    pub caught_error: bool,
    /// Whether the failed action is a category error that retrying can
    /// never fix (wrong destination type, impossible recipe, …); only such
    /// actions are blacklisted. Transient failures are simply retried.
    pub category_error: bool,
    /// Entities the failure implicates as stale knowledge (only meaningful
    /// when `caught_error`).
    pub stale_entities: Vec<String>,
    /// The LLM response behind the verdict.
    pub response: LlmResponse,
}

/// Whether a failure note indicates the referenced entity no longer exists
/// in the believed state (vs. a transient physical failure worth retrying).
fn implies_absence(note: &str) -> bool {
    [
        "not available",
        "does not exist",
        "was already",
        "already delivered",
        "already served",
        "already placed",
        "already done",
    ]
    .iter()
    .any(|pat| note.contains(pat))
}

/// Whether a failure note marks a category error — an action that is wrong
/// in kind, so repeating it is the paper's "loop of invalid operations".
fn implies_category_error(note: &str) -> bool {
    [
        "does not belong",
        "is not a valid destination",
        "is not a zone",
        "no recipe",
        "not part of this task",
        "unsupported subgoal",
        "does not need a joint lift",
        "is not gatherable",
        "too heavy",
        "invalid lift partner",
        "not found in the",
        "need a better pickaxe",
        "is not a destination",
    ]
    .iter()
    .any(|pat| note.contains(pat))
}

/// The reflection module, holding one tenant handle onto the shared
/// inference service.
#[derive(Debug, Clone)]
pub struct ReflectionModule {
    engine: EngineHandle,
    /// Reusable prompt buffer: rendered fresh each call, allocated once.
    prompt_buf: String,
}

impl ReflectionModule {
    /// Wraps an engine handle; a bare [`embodied_llm::LlmEngine`] or
    /// [`embodied_llm::ResilientEngine`] converts via a private
    /// single-tenant pass-through service.
    pub fn new(engine: impl Into<EngineHandle>) -> Self {
        ReflectionModule {
            engine: engine.into(),
            prompt_buf: String::new(),
        }
    }

    /// Read access to the engine (usage and resilience counters).
    pub fn engine(&self) -> &EngineHandle {
        &self.engine
    }

    /// Mutable access to the engine (stall draining).
    pub fn engine_mut(&mut self) -> &mut EngineHandle {
        &mut self.engine
    }

    /// Reflects on a failed (or unproductive) action.
    ///
    /// # Errors
    ///
    /// Propagates [`LlmError`] from the engine.
    pub fn reflect(
        &mut self,
        preamble: &str,
        subgoal: &Subgoal,
        outcome: &ExecOutcome,
        difficulty: f64,
        opts: InferenceOpts,
    ) -> Result<ReflectionVerdict, LlmError> {
        let mut w = PromptWriter::new(&mut self.prompt_buf, preamble);
        w.push_display("attempted action", subgoal)
            .push("observed result", &outcome.note)
            .push(
                "instruction",
                "Did the action achieve its intent? If not, diagnose the \
                 error and state what belief must be corrected.",
            );
        let response = self.engine.infer(
            LlmRequest::new(Purpose::Reflection, self.prompt_buf.as_str(), 70)
                .with_difficulty(difficulty)
                .with_opts(opts),
        )?;
        let caught = self.engine.sample_correct(response.quality);
        // Knowledge is corrected only when the failure shows the referent is
        // genuinely gone; a slipped grasp or interrupted walk means *retry*,
        // not *forget*.
        let stale_entities = if caught && implies_absence(&outcome.note) {
            subgoal
                .referenced_entities()
                .into_iter()
                .map(str::to_owned)
                .collect()
        } else {
            Vec::new()
        };
        Ok(ReflectionVerdict {
            caught_error: caught,
            category_error: caught
                && (implies_category_error(&outcome.note) || implies_absence(&outcome.note)),
            stale_entities,
            response,
        })
    }
}

impl ReflectionModule {
    /// Pre-execution plan verification (the paper's reflection "observes
    /// the state before … a decision agent's operation"): checks a proposed
    /// plan against the current beliefs, returning whether a *wrong* plan
    /// was recognized as wrong.
    ///
    /// # Errors
    ///
    /// Propagates [`LlmError`] from the engine.
    pub fn verify_plan(
        &mut self,
        preamble: &str,
        subgoal: &Subgoal,
        plan_is_wrong: bool,
        difficulty: f64,
        opts: InferenceOpts,
    ) -> Result<(bool, LlmResponse), LlmError> {
        let mut w = PromptWriter::new(&mut self.prompt_buf, preamble);
        w.push_display("proposed plan", subgoal).push(
            "instruction",
            "Verify the proposed plan against the current world state and              task goal. Answer whether it should be executed or revised.",
        );
        let response = self.engine.infer(
            LlmRequest::new(Purpose::Reflection, self.prompt_buf.as_str(), 18)
                .with_difficulty(difficulty)
                .with_opts(opts),
        )?;
        let caught = plan_is_wrong && self.engine.sample_correct(response.quality * 0.9);
        Ok((caught, response))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embodied_llm::{LlmEngine, ModelProfile};

    fn failed_outcome() -> ExecOutcome {
        ExecOutcome::failure("object_1 is not available")
    }

    #[test]
    fn gpt4_reflection_usually_catches_errors() {
        let mut r = ReflectionModule::new(LlmEngine::new(ModelProfile::gpt4_api(), 1));
        let sg = Subgoal::Pick {
            object: "object_1".into(),
        };
        let caught = (0..100)
            .filter(|_| {
                r.reflect(
                    "you are a reflector",
                    &sg,
                    &failed_outcome(),
                    0.4,
                    InferenceOpts::default(),
                )
                .unwrap()
                .caught_error
            })
            .count();
        assert!(caught > 70, "only caught {caught}/100");
    }

    #[test]
    fn caught_errors_implicate_entities() {
        let mut r = ReflectionModule::new(LlmEngine::new(ModelProfile::gpt4_api(), 2));
        let sg = Subgoal::Place {
            object: "plate_0".into(),
            dest: "fridge".into(),
        };
        loop {
            let v = r
                .reflect(
                    "you are a reflector",
                    &sg,
                    &failed_outcome(),
                    0.3,
                    InferenceOpts::default(),
                )
                .unwrap();
            if v.caught_error {
                assert_eq!(v.stale_entities, vec!["plate_0", "fridge"]);
                break;
            }
        }
    }

    #[test]
    fn missed_errors_implicate_nothing() {
        let mut r = ReflectionModule::new(LlmEngine::new(ModelProfile::llama3_8b(), 3));
        let sg = Subgoal::Explore;
        // Run until we observe at least one miss (small model on hard task).
        let mut saw_miss = false;
        for _ in 0..200 {
            let v = r
                .reflect(
                    "you are a reflector",
                    &sg,
                    &failed_outcome(),
                    0.9,
                    InferenceOpts::default(),
                )
                .unwrap();
            if !v.caught_error {
                assert!(v.stale_entities.is_empty());
                saw_miss = true;
                break;
            }
        }
        assert!(saw_miss, "expected the small model to miss at least once");
    }

    #[test]
    fn reflection_is_cheap_relative_to_planning() {
        // Reflection outputs are short; its latency share should be small
        // (the paper reports ~8.6% on average).
        let mut r = ReflectionModule::new(LlmEngine::new(ModelProfile::gpt4_api(), 4));
        let v = r
            .reflect(
                "you are a reflector",
                &Subgoal::Explore,
                &failed_outcome(),
                0.4,
                InferenceOpts::default(),
            )
            .unwrap();
        assert!(v.response.latency.as_secs_f64() < 6.0);
    }
}
