//! Memory module: observation / action / dialogue stores with a capacity
//! window, retrieval latency, the paper's large-memory inconsistency effect
//! (Fig. 5), and the dual long/short-term structure of Rec. 5.

use crate::config::MemoryCapacity;
use embodied_profiler::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// What kind of information a record holds (paper §II-A: observation,
/// dialogue and action memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordKind {
    /// World-state knowledge from sensing.
    Observation,
    /// The agent's own actions and their outcomes.
    Action,
    /// Messages exchanged with other agents.
    Dialogue,
}

/// One memory entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRecord {
    /// Step the record was written.
    pub step: usize,
    /// Record category.
    pub kind: RecordKind,
    /// Prompt-ready text.
    pub text: String,
    /// Entity names this record carries knowledge about.
    pub entities: Vec<String>,
}

/// Result of a retrieval pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieval {
    /// Prompt text of the retrieved context.
    pub text: String,
    /// Time the lookup took (grows with stored records — Fig. 5's
    /// "longer information retrieval times").
    pub latency: SimDuration,
    /// Quality penalty from memory inconsistency (0 unless the retained
    /// window is excessively large, per Fig. 5's full-history regime).
    pub inconsistency_penalty: f64,
    /// Records scanned by the lookup.
    pub records_scanned: usize,
}

/// Everything a retrieval pass measures except the text, which
/// [`MemoryModule::retrieve_write`] streams into a caller-owned buffer so
/// the steady-state step loop retrieves without heap allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalStats {
    /// Time the lookup took.
    pub latency: SimDuration,
    /// Quality penalty from memory inconsistency.
    pub inconsistency_penalty: f64,
    /// Records scanned by the lookup.
    pub records_scanned: usize,
}

/// The memory module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryModule {
    enabled: bool,
    capacity: MemoryCapacity,
    dual: bool,
    summarize: bool,
    retrieval_mode: RetrievalMode,
    landmarks: HashSet<String>,
    records: Vec<MemoryRecord>,
    long_term: HashSet<String>,
    /// The long-term store again, kept sorted so retrieval renders the
    /// deterministic "known entities" line without collecting and sorting
    /// on every call. Insertions only happen for *new* entities, so the
    /// steady state never touches it.
    long_term_sorted: Vec<String>,
    /// Latest step at which each entity appeared in a stored record —
    /// the incremental index behind [`MemoryModule::knows`] /
    /// [`MemoryModule::known_entities`]. Records enter step-monotonically,
    /// so an entity is inside the retained window iff its latest sighting
    /// is at or past the window cutoff.
    last_seen: HashMap<String, usize>,
    stale: HashSet<String>,
    /// Action memory (paper §II-A): per-skill success counts — "knowledge
    /// on how to execute specific high-level plans", the JARVIS-1/VOYAGER
    /// skill library.
    skills: std::collections::HashMap<String, u32>,
    current_step: usize,
}

/// Retained window (in records) beyond which inconsistencies appear.
const INCONSISTENCY_ONSET: usize = 60;

/// How stored records are indexed for retrieval (paper Fig. 5 in-text:
/// "retrieval based on multimodal states … outperforms approaches that rely
/// solely on text embeddings").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RetrievalMode {
    /// Entity-indexed multimodal retrieval (vision + symbolic + action
    /// history): full recall — the suite default.
    #[default]
    Multimodal,
    /// Text-embedding similarity only: imperfect recall — entities whose
    /// descriptions embed poorly are missed at retrieval time.
    TextEmbedding,
}

impl embodied_profiler::ToJson for RetrievalMode {
    fn to_json(&self) -> embodied_profiler::JsonValue {
        embodied_profiler::JsonValue::Str(
            match self {
                RetrievalMode::Multimodal => "multimodal",
                RetrievalMode::TextEmbedding => "text-embedding",
            }
            .into(),
        )
    }
}

impl embodied_profiler::FromJson for RetrievalMode {
    fn from_json(
        value: &embodied_profiler::JsonValue,
    ) -> Result<Self, embodied_profiler::JsonError> {
        match value
            .as_str()
            .ok_or_else(|| embodied_profiler::JsonError::msg("retrieval mode: expected a string"))?
        {
            "multimodal" => Ok(RetrievalMode::Multimodal),
            "text-embedding" => Ok(RetrievalMode::TextEmbedding),
            other => Err(embodied_profiler::JsonError::msg(format!(
                "unknown retrieval mode: {other:?}"
            ))),
        }
    }
}

/// Deterministic pseudo-embedding recall: a text-only index misses ~1 in 5
/// lookups, and *which* entities it misses shifts with the query context
/// (bucketed by step), the way embedding similarity drifts as the rest of
/// the prompt changes.
fn text_embedding_recalls(entity: &str, step: usize) -> bool {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (step as u64 / 4);
    for b in entity.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    !h.is_multiple_of(5)
}

impl MemoryModule {
    /// Creates a memory module.
    ///
    /// * `enabled: false` reproduces the Fig. 3 memory-off ablation: nothing
    ///   is stored, knowledge collapses to landmarks + current percept.
    /// * `dual: true` enables Rec. 5's long-term/short-term split.
    /// * `summarize: true` enables Rec. 6's context compression.
    pub fn new(
        enabled: bool,
        capacity: MemoryCapacity,
        dual: bool,
        summarize: bool,
        landmarks: Vec<String>,
    ) -> Self {
        MemoryModule {
            enabled,
            capacity,
            dual,
            summarize,
            retrieval_mode: RetrievalMode::default(),
            landmarks: landmarks.into_iter().collect(),
            records: Vec::new(),
            long_term: HashSet::new(),
            long_term_sorted: Vec::new(),
            last_seen: HashMap::new(),
            stale: HashSet::new(),
            skills: std::collections::HashMap::new(),
            current_step: 0,
        }
    }

    /// Selects the retrieval index (builder-style).
    pub fn with_retrieval_mode(mut self, mode: RetrievalMode) -> Self {
        self.retrieval_mode = mode;
        self
    }

    /// Whether the module stores anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Total records stored so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Marks the beginning of an environment step.
    pub fn begin_step(&mut self, step: usize) {
        self.current_step = step;
        // Stale markers persist only briefly; the world may change back.
        if step.is_multiple_of(6) {
            self.stale.clear();
        }
    }

    /// Stores a record. When the module is disabled the record still enters
    /// a 1-step working buffer — disabling the memory *module* removes
    /// storage and retrieval, not the agent's within-context awareness of
    /// the immediately preceding turn.
    pub fn store(&mut self, kind: RecordKind, text: impl Into<String>, entities: Vec<String>) {
        debug_assert!(
            self.records
                .last()
                .is_none_or(|r| r.step <= self.current_step),
            "records must be stored in step order"
        );
        if self.dual && self.enabled {
            for e in &entities {
                if !self.long_term.contains(e) {
                    self.long_term.insert(e.clone());
                    let pos = self
                        .long_term_sorted
                        .binary_search(e)
                        .unwrap_or_else(|pos| pos);
                    self.long_term_sorted.insert(pos, e.clone());
                }
            }
        }
        for e in &entities {
            if let Some(seen) = self.last_seen.get_mut(e) {
                *seen = (*seen).max(self.current_step);
            } else {
                self.last_seen.insert(e.clone(), self.current_step);
            }
        }
        self.records.push(MemoryRecord {
            step: self.current_step,
            kind,
            text: text.into(),
            entities,
        });
        if !self.enabled {
            let cutoff = self.current_step.saturating_sub(1);
            self.records.retain(|r| r.step >= cutoff);
        }
    }

    /// Records a successfully executed skill pattern in action memory
    /// (no-op when the module is disabled).
    pub fn record_skill(&mut self, pattern: &str) {
        if self.enabled {
            *self.skills.entry(pattern.to_owned()).or_insert(0) += 1;
        }
    }

    /// How often a skill pattern has succeeded before.
    pub fn skill_familiarity(&self, pattern: &str) -> u32 {
        if self.enabled {
            self.skills.get(pattern).copied().unwrap_or(0)
        } else {
            0
        }
    }

    /// Quality bonus from a practiced skill: accumulated procedural
    /// knowledge makes re-planning the same kind of step more reliable,
    /// saturating quickly (≤ +0.04).
    pub fn skill_bonus(&self, pattern: &str) -> f64 {
        (f64::from(self.skill_familiarity(pattern)) * 0.01).min(0.04)
    }

    /// Marks an entity's knowledge as stale (reflection discovered the
    /// world no longer matches memory); it is excluded from knowledge until
    /// re-observed or the marker expires.
    pub fn mark_stale(&mut self, entity: &str) {
        self.stale.insert(entity.to_owned());
    }

    /// First step inside the retained window.
    fn window_cutoff(&self) -> usize {
        let window_steps = if self.enabled {
            match self.capacity {
                MemoryCapacity::None => 0,
                MemoryCapacity::Steps(n) => n,
                MemoryCapacity::Full => usize::MAX,
            }
        } else {
            1 // working buffer only
        };
        self.current_step.saturating_sub(window_steps)
    }

    /// Records inside the retained window. Records are stored in step
    /// order, so the window is always a suffix of the store and one
    /// binary search finds it — no per-call scan or collection.
    fn retained(&self) -> &[MemoryRecord] {
        let cutoff = self.window_cutoff();
        let start = self.records.partition_point(|r| r.step < cutoff);
        &self.records[start..]
    }

    /// Whether one entity is currently known, without materializing the
    /// full known set: a point query against landmarks, the incremental
    /// last-seen index, and the long-term store.
    pub fn knows(&self, entity: &str) -> bool {
        if self.stale.contains(entity) {
            return false;
        }
        if self.landmarks.contains(entity)
            || (self.enabled && self.dual && self.long_term.contains(entity))
        {
            return true;
        }
        match self.last_seen.get(entity) {
            Some(&seen) => {
                seen >= self.window_cutoff()
                    && (self.retrieval_mode == RetrievalMode::Multimodal
                        || text_embedding_recalls(entity, self.current_step))
            }
            None => false,
        }
    }

    /// Entity names the agent currently *knows about*: landmarks, entities
    /// in the retained window, and (with dual memory) the long-term store —
    /// minus anything marked stale.
    pub fn known_entities(&self) -> HashSet<String> {
        let mut known = self.landmarks.clone();
        // The last-seen index collapses the per-record scan: an entity is
        // in the retained window (which is the 1-step working buffer when
        // the module is disabled) iff its latest sighting is.
        let cutoff = self.window_cutoff();
        for (e, &seen) in &self.last_seen {
            if seen >= cutoff
                && (self.retrieval_mode == RetrievalMode::Multimodal
                    || text_embedding_recalls(e, self.current_step))
            {
                known.insert(e.clone());
            }
        }
        if self.enabled && self.dual {
            known.extend(self.long_term.iter().cloned());
        }
        for s in &self.stale {
            known.remove(s);
        }
        known
    }

    /// Streams retrieval context into `out` (appending), returning the
    /// measured stats. Allocation-free in steady state: record lines are
    /// written straight into the caller's buffer, the summarized view
    /// renders only the lines it keeps, and the dual-memory long-term line
    /// walks the pre-sorted store.
    pub fn retrieve_write(&self, out: &mut String) -> RetrievalStats {
        if !self.enabled {
            return RetrievalStats {
                latency: SimDuration::ZERO,
                inconsistency_penalty: 0.0,
                records_scanned: 0,
            };
        }
        let retained = self.retained();
        let scanned = if self.dual {
            // Short-term scan plus an indexed long-term lookup.
            retained.len().min(4) + 2
        } else {
            retained.len()
        };
        let latency = SimDuration::from_millis(20) + SimDuration::from_millis(16) * scanned as u64;

        // The rendered view is a virtual line sequence — the dual path is
        // one long-term line plus the last ≤4 records; the flat path is
        // every retained record. Summarization keeps the last 6 lines
        // behind a "[N earlier entries summarized]" header, so lines that
        // would be dropped are never formatted at all.
        let tail = if self.dual {
            &retained[retained.len() - retained.len().min(4)..]
        } else {
            retained
        };
        let n_lines = if self.dual {
            1 + tail.len()
        } else {
            tail.len()
        };
        const KEEP_LAST: usize = 6;
        let skip = if self.summarize && n_lines > KEEP_LAST {
            let omitted = n_lines - KEEP_LAST;
            let _ = writeln!(
                out,
                "[{omitted} earlier entries summarized: routine progress]"
            );
            omitted
        } else {
            0
        };
        let mut line_idx = 0usize;
        let mut first = true;
        if self.dual {
            if line_idx >= skip {
                out.push_str("long-term: known entities ");
                for (i, e) in self.long_term_sorted.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(e);
                }
                first = false;
            }
            line_idx += 1;
        }
        for r in tail {
            if line_idx >= skip {
                if !first {
                    out.push('\n');
                }
                first = false;
                let _ = write!(out, "step {}: {}", r.step, r.text);
            }
            line_idx += 1;
        }

        let inconsistency_penalty = if self.dual || retained.len() <= INCONSISTENCY_ONSET {
            0.0
        } else {
            (0.006 * (retained.len() - INCONSISTENCY_ONSET) as f64).min(0.12)
        };

        RetrievalStats {
            latency,
            inconsistency_penalty,
            records_scanned: scanned,
        }
    }

    /// Retrieves context for prompting into a fresh string. The step loop
    /// uses [`MemoryModule::retrieve_write`] with a reused buffer; this
    /// wrapper keeps the allocating convenience shape for callers that
    /// want an owned [`Retrieval`].
    pub fn retrieve(&self) -> Retrieval {
        let mut text = String::new();
        let stats = self.retrieve_write(&mut text);
        Retrieval {
            text,
            latency: stats.latency,
            inconsistency_penalty: stats.inconsistency_penalty,
            records_scanned: stats.records_scanned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::summarize_history;

    fn module(capacity: MemoryCapacity) -> MemoryModule {
        MemoryModule::new(true, capacity, false, false, vec!["room_0".into()])
    }

    /// The pre-rework algorithms, verbatim: `known_entities` cloned the
    /// landmark set and re-scanned every retained record; `retrieve`
    /// collected every line into a `Vec<String>` before joining. The
    /// incremental index and the streaming writer must match both exactly.
    fn known_entities_by_record_scan(m: &MemoryModule) -> HashSet<String> {
        let mut known = m.landmarks.clone();
        for r in m.retained() {
            for e in &r.entities {
                if m.retrieval_mode == RetrievalMode::Multimodal
                    || text_embedding_recalls(e, m.current_step)
                {
                    known.insert(e.clone());
                }
            }
        }
        if m.enabled && m.dual {
            known.extend(m.long_term.iter().cloned());
        }
        for s in &m.stale {
            known.remove(s);
        }
        known
    }

    fn retrieval_text_by_line_collection(m: &MemoryModule) -> String {
        if !m.enabled {
            return String::new();
        }
        let retained: Vec<&MemoryRecord> = m.retained().iter().collect();
        let lines: Vec<String> = if m.dual {
            let mut items: Vec<&str> = m.long_term.iter().map(String::as_str).collect();
            items.sort_unstable();
            let mut lines = vec![format!("long-term: known entities {}", items.join(", "))];
            lines.extend(
                retained
                    .iter()
                    .rev()
                    .take(4)
                    .rev()
                    .map(|r| format!("step {}: {}", r.step, r.text)),
            );
            lines
        } else {
            retained
                .iter()
                .map(|r| format!("step {}: {}", r.step, r.text))
                .collect()
        };
        if m.summarize {
            summarize_history(&lines, 6)
        } else {
            lines.join("\n")
        }
    }

    #[test]
    fn incremental_index_matches_record_scan_across_modes() {
        for (enabled, dual, summarize, mode) in [
            (true, false, false, RetrievalMode::Multimodal),
            (true, false, true, RetrievalMode::Multimodal),
            (true, true, false, RetrievalMode::Multimodal),
            (true, true, true, RetrievalMode::Multimodal),
            (true, false, false, RetrievalMode::TextEmbedding),
            (true, true, true, RetrievalMode::TextEmbedding),
            (false, false, false, RetrievalMode::Multimodal),
        ] {
            for capacity in [
                MemoryCapacity::None,
                MemoryCapacity::Steps(3),
                MemoryCapacity::Full,
            ] {
                let mut m = MemoryModule::new(
                    enabled,
                    capacity,
                    dual,
                    summarize,
                    vec!["room_0".into(), "goal_zone".into()],
                )
                .with_retrieval_mode(mode);
                for step in 0..25 {
                    m.begin_step(step);
                    m.store(
                        RecordKind::Observation,
                        format!("saw object_{} at step {step}", step % 5),
                        vec![format!("object_{}", step % 5)],
                    );
                    if step % 7 == 3 {
                        m.mark_stale(&format!("object_{}", step % 5));
                    }
                    let expect = known_entities_by_record_scan(&m);
                    assert_eq!(m.known_entities(), expect, "known set diverged at {step}");
                    for e in &expect {
                        assert!(m.knows(e), "knows() must accept {e} at step {step}");
                    }
                    for i in 0..5 {
                        let e = format!("object_{i}");
                        assert_eq!(
                            m.knows(&e),
                            expect.contains(&e),
                            "knows({e}) diverged at step {step}"
                        );
                    }
                    assert_eq!(
                        m.retrieve().text,
                        retrieval_text_by_line_collection(&m),
                        "retrieval text diverged at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn retrieve_write_appends_without_clearing() {
        let mut m = module(MemoryCapacity::Full);
        m.begin_step(1);
        m.store(RecordKind::Action, "picked up apple_1", vec![]);
        let mut buf = String::from("[map]\nroom_0: apple_1\n");
        let stats = m.retrieve_write(&mut buf);
        assert!(buf.starts_with("[map]\n"));
        assert!(buf.ends_with("step 1: picked up apple_1"));
        assert_eq!(stats.records_scanned, 1);
        assert_eq!(stats.latency, m.retrieve().latency);
    }

    #[test]
    fn disabled_memory_keeps_only_a_one_step_working_buffer() {
        let mut m = MemoryModule::new(
            false,
            MemoryCapacity::Full,
            false,
            false,
            vec!["room_0".into()],
        );
        m.begin_step(1);
        m.store(RecordKind::Observation, "saw apple", vec!["apple_1".into()]);
        // The immediately preceding turn is still in working context…
        assert!(m.known_entities().contains("apple_1"));
        assert_eq!(m.retrieve().latency, SimDuration::ZERO);
        // …but two steps later it is gone, and landmarks remain.
        m.begin_step(3);
        let known = m.known_entities();
        assert!(known.contains("room_0"));
        assert!(!known.contains("apple_1"));
    }

    #[test]
    fn window_forgets_old_entities() {
        let mut m = module(MemoryCapacity::Steps(3));
        m.begin_step(1);
        m.store(RecordKind::Observation, "saw apple", vec!["apple_1".into()]);
        assert!(m.known_entities().contains("apple_1"));
        m.begin_step(10);
        assert!(
            !m.known_entities().contains("apple_1"),
            "entity outside the window must be forgotten"
        );
    }

    #[test]
    fn full_capacity_never_forgets() {
        let mut m = module(MemoryCapacity::Full);
        m.begin_step(1);
        m.store(RecordKind::Observation, "saw apple", vec!["apple_1".into()]);
        m.begin_step(500);
        assert!(m.known_entities().contains("apple_1"));
    }

    #[test]
    fn retrieval_latency_grows_with_records() {
        let mut m = module(MemoryCapacity::Full);
        m.begin_step(0);
        let early = m.retrieve().latency;
        for i in 0..50 {
            m.begin_step(i);
            m.store(RecordKind::Action, format!("did thing {i}"), vec![]);
        }
        let late = m.retrieve().latency;
        assert!(late > early);
    }

    #[test]
    fn inconsistency_appears_only_with_huge_windows() {
        let mut m = module(MemoryCapacity::Full);
        for i in 0..100 {
            m.begin_step(i);
            m.store(RecordKind::Observation, format!("obs {i}"), vec![]);
        }
        assert!(m.retrieve().inconsistency_penalty > 0.0);

        let mut small = module(MemoryCapacity::Steps(8));
        for i in 0..100 {
            small.begin_step(i);
            small.store(RecordKind::Observation, format!("obs {i}"), vec![]);
        }
        assert_eq!(small.retrieve().inconsistency_penalty, 0.0);
    }

    #[test]
    fn dual_memory_kills_inconsistency_and_keeps_knowledge() {
        let mut m = MemoryModule::new(true, MemoryCapacity::Full, true, false, vec![]);
        for i in 0..100 {
            m.begin_step(i);
            m.store(
                RecordKind::Observation,
                format!("obs {i}"),
                vec![format!("entity_{i}")],
            );
        }
        let r = m.retrieve();
        assert_eq!(r.inconsistency_penalty, 0.0);
        // Long-term store retains everything…
        assert!(m.known_entities().contains("entity_0"));
        // …while retrieval stays cheap.
        assert!(r.latency < SimDuration::from_millis(200));
    }

    #[test]
    fn stale_entities_are_suppressed_then_recover() {
        let mut m = module(MemoryCapacity::Full);
        m.begin_step(1);
        m.store(RecordKind::Observation, "saw apple", vec!["apple_1".into()]);
        m.mark_stale("apple_1");
        assert!(!m.known_entities().contains("apple_1"));
        // Markers expire on a step divisible by 6.
        m.begin_step(6);
        assert!(m.known_entities().contains("apple_1"));
    }

    #[test]
    fn text_embedding_mode_misses_some_entities() {
        let entities: Vec<String> = (0..40).map(|i| format!("entity_{i}")).collect();
        let mut multi = module(MemoryCapacity::Full);
        let mut text =
            module(MemoryCapacity::Full).with_retrieval_mode(RetrievalMode::TextEmbedding);
        for m in [&mut multi, &mut text] {
            m.begin_step(1);
            m.store(RecordKind::Observation, "saw things", entities.clone());
        }
        let full = multi.known_entities().len();
        let partial = text.known_entities().len();
        assert!(partial < full, "text-only recall must miss entities");
        assert!(
            partial as f64 > full as f64 * 0.6,
            "but it should still recall most ({partial}/{full})"
        );
        // Deterministic at a given step…
        assert_eq!(text.known_entities(), text.known_entities());
        // …but the missed set shifts as the query context moves on.
        let before = text.known_entities();
        text.begin_step(9);
        assert_ne!(before, text.known_entities());
    }

    #[test]
    fn retrieval_text_contains_recent_records() {
        let mut m = module(MemoryCapacity::Steps(5));
        m.begin_step(2);
        m.store(RecordKind::Action, "picked up apple_1", vec![]);
        let r = m.retrieve();
        assert!(r.text.contains("picked up apple_1"));
        assert!(r.text.contains("step 2"));
    }

    #[test]
    fn skill_library_accumulates_and_saturates() {
        let mut m = module(MemoryCapacity::Steps(4));
        assert_eq!(m.skill_bonus("pick"), 0.0);
        for _ in 0..10 {
            m.record_skill("pick");
        }
        assert_eq!(m.skill_familiarity("pick"), 10);
        assert!((m.skill_bonus("pick") - 0.04).abs() < 1e-12, "bonus caps");
        assert_eq!(m.skill_bonus("craft"), 0.0);
    }

    #[test]
    fn disabled_memory_has_no_skill_library() {
        let mut m = MemoryModule::new(false, MemoryCapacity::Full, false, false, vec![]);
        m.record_skill("pick");
        assert_eq!(m.skill_familiarity("pick"), 0);
        assert_eq!(m.skill_bonus("pick"), 0.0);
    }

    #[test]
    fn summarization_shrinks_retrieved_text() {
        let mut plain = module(MemoryCapacity::Full);
        let mut summ = MemoryModule::new(true, MemoryCapacity::Full, false, true, vec![]);
        for i in 0..30 {
            plain.begin_step(i);
            summ.begin_step(i);
            let text = format!("observed the corridor and moved forward at step {i}");
            plain.store(RecordKind::Observation, text.clone(), vec![]);
            summ.store(RecordKind::Observation, text, vec![]);
        }
        assert!(summ.retrieve().text.len() < plain.retrieve().text.len() / 2);
    }
}
