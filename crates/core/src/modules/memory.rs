//! Memory module: observation / action / dialogue stores with a capacity
//! window, retrieval latency, the paper's large-memory inconsistency effect
//! (Fig. 5), and the dual long/short-term structure of Rec. 5.

use crate::config::MemoryCapacity;
use crate::prompt::summarize_history;
use embodied_profiler::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// What kind of information a record holds (paper §II-A: observation,
/// dialogue and action memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordKind {
    /// World-state knowledge from sensing.
    Observation,
    /// The agent's own actions and their outcomes.
    Action,
    /// Messages exchanged with other agents.
    Dialogue,
}

/// One memory entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRecord {
    /// Step the record was written.
    pub step: usize,
    /// Record category.
    pub kind: RecordKind,
    /// Prompt-ready text.
    pub text: String,
    /// Entity names this record carries knowledge about.
    pub entities: Vec<String>,
}

/// Result of a retrieval pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieval {
    /// Prompt text of the retrieved context.
    pub text: String,
    /// Time the lookup took (grows with stored records — Fig. 5's
    /// "longer information retrieval times").
    pub latency: SimDuration,
    /// Quality penalty from memory inconsistency (0 unless the retained
    /// window is excessively large, per Fig. 5's full-history regime).
    pub inconsistency_penalty: f64,
    /// Records scanned by the lookup.
    pub records_scanned: usize,
}

/// The memory module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryModule {
    enabled: bool,
    capacity: MemoryCapacity,
    dual: bool,
    summarize: bool,
    retrieval_mode: RetrievalMode,
    landmarks: HashSet<String>,
    records: Vec<MemoryRecord>,
    long_term: HashSet<String>,
    stale: HashSet<String>,
    /// Action memory (paper §II-A): per-skill success counts — "knowledge
    /// on how to execute specific high-level plans", the JARVIS-1/VOYAGER
    /// skill library.
    skills: std::collections::HashMap<String, u32>,
    current_step: usize,
}

/// Retained window (in records) beyond which inconsistencies appear.
const INCONSISTENCY_ONSET: usize = 60;

/// How stored records are indexed for retrieval (paper Fig. 5 in-text:
/// "retrieval based on multimodal states … outperforms approaches that rely
/// solely on text embeddings").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RetrievalMode {
    /// Entity-indexed multimodal retrieval (vision + symbolic + action
    /// history): full recall — the suite default.
    #[default]
    Multimodal,
    /// Text-embedding similarity only: imperfect recall — entities whose
    /// descriptions embed poorly are missed at retrieval time.
    TextEmbedding,
}

/// Deterministic pseudo-embedding recall: a text-only index misses ~1 in 5
/// lookups, and *which* entities it misses shifts with the query context
/// (bucketed by step), the way embedding similarity drifts as the rest of
/// the prompt changes.
fn text_embedding_recalls(entity: &str, step: usize) -> bool {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (step as u64 / 4);
    for b in entity.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    !h.is_multiple_of(5)
}

impl MemoryModule {
    /// Creates a memory module.
    ///
    /// * `enabled: false` reproduces the Fig. 3 memory-off ablation: nothing
    ///   is stored, knowledge collapses to landmarks + current percept.
    /// * `dual: true` enables Rec. 5's long-term/short-term split.
    /// * `summarize: true` enables Rec. 6's context compression.
    pub fn new(
        enabled: bool,
        capacity: MemoryCapacity,
        dual: bool,
        summarize: bool,
        landmarks: Vec<String>,
    ) -> Self {
        MemoryModule {
            enabled,
            capacity,
            dual,
            summarize,
            retrieval_mode: RetrievalMode::default(),
            landmarks: landmarks.into_iter().collect(),
            records: Vec::new(),
            long_term: HashSet::new(),
            stale: HashSet::new(),
            skills: std::collections::HashMap::new(),
            current_step: 0,
        }
    }

    /// Selects the retrieval index (builder-style).
    pub fn with_retrieval_mode(mut self, mode: RetrievalMode) -> Self {
        self.retrieval_mode = mode;
        self
    }

    /// Whether the module stores anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Total records stored so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Marks the beginning of an environment step.
    pub fn begin_step(&mut self, step: usize) {
        self.current_step = step;
        // Stale markers persist only briefly; the world may change back.
        if step.is_multiple_of(6) {
            self.stale.clear();
        }
    }

    /// Stores a record. When the module is disabled the record still enters
    /// a 1-step working buffer — disabling the memory *module* removes
    /// storage and retrieval, not the agent's within-context awareness of
    /// the immediately preceding turn.
    pub fn store(&mut self, kind: RecordKind, text: impl Into<String>, entities: Vec<String>) {
        if self.dual && self.enabled {
            self.long_term.extend(entities.iter().cloned());
        }
        self.records.push(MemoryRecord {
            step: self.current_step,
            kind,
            text: text.into(),
            entities,
        });
        if !self.enabled {
            let cutoff = self.current_step.saturating_sub(1);
            self.records.retain(|r| r.step >= cutoff);
        }
    }

    /// Records a successfully executed skill pattern in action memory
    /// (no-op when the module is disabled).
    pub fn record_skill(&mut self, pattern: &str) {
        if self.enabled {
            *self.skills.entry(pattern.to_owned()).or_insert(0) += 1;
        }
    }

    /// How often a skill pattern has succeeded before.
    pub fn skill_familiarity(&self, pattern: &str) -> u32 {
        if self.enabled {
            self.skills.get(pattern).copied().unwrap_or(0)
        } else {
            0
        }
    }

    /// Quality bonus from a practiced skill: accumulated procedural
    /// knowledge makes re-planning the same kind of step more reliable,
    /// saturating quickly (≤ +0.04).
    pub fn skill_bonus(&self, pattern: &str) -> f64 {
        (f64::from(self.skill_familiarity(pattern)) * 0.01).min(0.04)
    }

    /// Marks an entity's knowledge as stale (reflection discovered the
    /// world no longer matches memory); it is excluded from knowledge until
    /// re-observed or the marker expires.
    pub fn mark_stale(&mut self, entity: &str) {
        self.stale.insert(entity.to_owned());
    }

    fn retained(&self) -> impl Iterator<Item = &MemoryRecord> {
        let window_steps = if self.enabled {
            match self.capacity {
                MemoryCapacity::None => 0,
                MemoryCapacity::Steps(n) => n,
                MemoryCapacity::Full => usize::MAX,
            }
        } else {
            1 // working buffer only
        };
        let cutoff = self.current_step.saturating_sub(window_steps);
        self.records.iter().filter(move |r| r.step >= cutoff)
    }

    /// Entity names the agent currently *knows about*: landmarks, entities
    /// in the retained window, and (with dual memory) the long-term store —
    /// minus anything marked stale.
    pub fn known_entities(&self) -> HashSet<String> {
        let mut known = self.landmarks.clone();
        // `retained` already collapses to the 1-step working buffer when
        // the module is disabled.
        for r in self.retained() {
            for e in &r.entities {
                if self.retrieval_mode == RetrievalMode::Multimodal
                    || text_embedding_recalls(e, self.current_step)
                {
                    known.insert(e.clone());
                }
            }
        }
        if self.enabled && self.dual {
            known.extend(self.long_term.iter().cloned());
        }
        for s in &self.stale {
            known.remove(s);
        }
        known
    }

    /// Retrieves context for prompting.
    pub fn retrieve(&self) -> Retrieval {
        if !self.enabled {
            return Retrieval {
                text: String::new(),
                latency: SimDuration::ZERO,
                inconsistency_penalty: 0.0,
                records_scanned: 0,
            };
        }
        let retained: Vec<&MemoryRecord> = self.retained().collect();
        let scanned = if self.dual {
            // Short-term scan plus an indexed long-term lookup.
            retained.len().min(4) + 2
        } else {
            retained.len()
        };
        let latency = SimDuration::from_millis(20) + SimDuration::from_millis(16) * scanned as u64;

        let lines: Vec<String> = if self.dual {
            let mut lines = vec![format!(
                "long-term: known entities {}",
                itertools_join(self.long_term.iter())
            )];
            lines.extend(
                retained
                    .iter()
                    .rev()
                    .take(4)
                    .rev()
                    .map(|r| format!("step {}: {}", r.step, r.text)),
            );
            lines
        } else {
            retained
                .iter()
                .map(|r| format!("step {}: {}", r.step, r.text))
                .collect()
        };
        let text = if self.summarize {
            summarize_history(&lines, 6)
        } else {
            lines.join("\n")
        };

        let inconsistency_penalty = if self.dual || retained.len() <= INCONSISTENCY_ONSET {
            0.0
        } else {
            (0.006 * (retained.len() - INCONSISTENCY_ONSET) as f64).min(0.12)
        };

        Retrieval {
            text,
            latency,
            inconsistency_penalty,
            records_scanned: scanned,
        }
    }
}

fn itertools_join<'a>(iter: impl Iterator<Item = &'a String>) -> String {
    let mut items: Vec<&str> = iter.map(String::as_str).collect();
    items.sort_unstable();
    items.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(capacity: MemoryCapacity) -> MemoryModule {
        MemoryModule::new(true, capacity, false, false, vec!["room_0".into()])
    }

    #[test]
    fn disabled_memory_keeps_only_a_one_step_working_buffer() {
        let mut m = MemoryModule::new(
            false,
            MemoryCapacity::Full,
            false,
            false,
            vec!["room_0".into()],
        );
        m.begin_step(1);
        m.store(RecordKind::Observation, "saw apple", vec!["apple_1".into()]);
        // The immediately preceding turn is still in working context…
        assert!(m.known_entities().contains("apple_1"));
        assert_eq!(m.retrieve().latency, SimDuration::ZERO);
        // …but two steps later it is gone, and landmarks remain.
        m.begin_step(3);
        let known = m.known_entities();
        assert!(known.contains("room_0"));
        assert!(!known.contains("apple_1"));
    }

    #[test]
    fn window_forgets_old_entities() {
        let mut m = module(MemoryCapacity::Steps(3));
        m.begin_step(1);
        m.store(RecordKind::Observation, "saw apple", vec!["apple_1".into()]);
        assert!(m.known_entities().contains("apple_1"));
        m.begin_step(10);
        assert!(
            !m.known_entities().contains("apple_1"),
            "entity outside the window must be forgotten"
        );
    }

    #[test]
    fn full_capacity_never_forgets() {
        let mut m = module(MemoryCapacity::Full);
        m.begin_step(1);
        m.store(RecordKind::Observation, "saw apple", vec!["apple_1".into()]);
        m.begin_step(500);
        assert!(m.known_entities().contains("apple_1"));
    }

    #[test]
    fn retrieval_latency_grows_with_records() {
        let mut m = module(MemoryCapacity::Full);
        m.begin_step(0);
        let early = m.retrieve().latency;
        for i in 0..50 {
            m.begin_step(i);
            m.store(RecordKind::Action, format!("did thing {i}"), vec![]);
        }
        let late = m.retrieve().latency;
        assert!(late > early);
    }

    #[test]
    fn inconsistency_appears_only_with_huge_windows() {
        let mut m = module(MemoryCapacity::Full);
        for i in 0..100 {
            m.begin_step(i);
            m.store(RecordKind::Observation, format!("obs {i}"), vec![]);
        }
        assert!(m.retrieve().inconsistency_penalty > 0.0);

        let mut small = module(MemoryCapacity::Steps(8));
        for i in 0..100 {
            small.begin_step(i);
            small.store(RecordKind::Observation, format!("obs {i}"), vec![]);
        }
        assert_eq!(small.retrieve().inconsistency_penalty, 0.0);
    }

    #[test]
    fn dual_memory_kills_inconsistency_and_keeps_knowledge() {
        let mut m = MemoryModule::new(true, MemoryCapacity::Full, true, false, vec![]);
        for i in 0..100 {
            m.begin_step(i);
            m.store(
                RecordKind::Observation,
                format!("obs {i}"),
                vec![format!("entity_{i}")],
            );
        }
        let r = m.retrieve();
        assert_eq!(r.inconsistency_penalty, 0.0);
        // Long-term store retains everything…
        assert!(m.known_entities().contains("entity_0"));
        // …while retrieval stays cheap.
        assert!(r.latency < SimDuration::from_millis(200));
    }

    #[test]
    fn stale_entities_are_suppressed_then_recover() {
        let mut m = module(MemoryCapacity::Full);
        m.begin_step(1);
        m.store(RecordKind::Observation, "saw apple", vec!["apple_1".into()]);
        m.mark_stale("apple_1");
        assert!(!m.known_entities().contains("apple_1"));
        // Markers expire on a step divisible by 6.
        m.begin_step(6);
        assert!(m.known_entities().contains("apple_1"));
    }

    #[test]
    fn text_embedding_mode_misses_some_entities() {
        let entities: Vec<String> = (0..40).map(|i| format!("entity_{i}")).collect();
        let mut multi = module(MemoryCapacity::Full);
        let mut text =
            module(MemoryCapacity::Full).with_retrieval_mode(RetrievalMode::TextEmbedding);
        for m in [&mut multi, &mut text] {
            m.begin_step(1);
            m.store(RecordKind::Observation, "saw things", entities.clone());
        }
        let full = multi.known_entities().len();
        let partial = text.known_entities().len();
        assert!(partial < full, "text-only recall must miss entities");
        assert!(
            partial as f64 > full as f64 * 0.6,
            "but it should still recall most ({partial}/{full})"
        );
        // Deterministic at a given step…
        assert_eq!(text.known_entities(), text.known_entities());
        // …but the missed set shifts as the query context moves on.
        let before = text.known_entities();
        text.begin_step(9);
        assert_ne!(before, text.known_entities());
    }

    #[test]
    fn retrieval_text_contains_recent_records() {
        let mut m = module(MemoryCapacity::Steps(5));
        m.begin_step(2);
        m.store(RecordKind::Action, "picked up apple_1", vec![]);
        let r = m.retrieve();
        assert!(r.text.contains("picked up apple_1"));
        assert!(r.text.contains("step 2"));
    }

    #[test]
    fn skill_library_accumulates_and_saturates() {
        let mut m = module(MemoryCapacity::Steps(4));
        assert_eq!(m.skill_bonus("pick"), 0.0);
        for _ in 0..10 {
            m.record_skill("pick");
        }
        assert_eq!(m.skill_familiarity("pick"), 10);
        assert!((m.skill_bonus("pick") - 0.04).abs() < 1e-12, "bonus caps");
        assert_eq!(m.skill_bonus("craft"), 0.0);
    }

    #[test]
    fn disabled_memory_has_no_skill_library() {
        let mut m = MemoryModule::new(false, MemoryCapacity::Full, false, false, vec![]);
        m.record_skill("pick");
        assert_eq!(m.skill_familiarity("pick"), 0);
        assert_eq!(m.skill_bonus("pick"), 0.0);
    }

    #[test]
    fn summarization_shrinks_retrieved_text() {
        let mut plain = module(MemoryCapacity::Full);
        let mut summ = MemoryModule::new(true, MemoryCapacity::Full, false, true, vec![]);
        for i in 0..30 {
            plain.begin_step(i);
            summ.begin_step(i);
            let text = format!("observed the corridor and moved forward at step {i}");
            plain.store(RecordKind::Observation, text.clone(), vec![]);
            summ.store(RecordKind::Observation, text, vec![]);
        }
        assert!(summ.retrieve().text.len() < plain.retrieve().text.len() / 2);
    }
}
