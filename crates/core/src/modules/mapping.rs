//! Spatial world model built from accumulated observations.
//!
//! The paper's sensing module "establishes a global or shared environmental
//! model that includes a map of spatial layout, moving entities, obstacles,
//! and resource locations" (§II-A). [`WorldMap`] is that model: it folds
//! each step's percept into per-location entity registries and visit
//! counts, renders a compact map summary for prompts, and reports coverage
//! — the measurable footprint of exploration.

use crate::modules::Percept;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What the agent knows about one location.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocationKnowledge {
    /// Steps at which the agent observed from this location.
    pub visits: u64,
    /// Entities last seen here (most recent observation wins).
    pub entities: Vec<String>,
    /// Step of the most recent visit.
    pub last_seen_step: usize,
}

/// An accumulated map of the (partially observed) world.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorldMap {
    locations: BTreeMap<String, LocationKnowledge>,
}

impl WorldMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one percept into the map.
    pub fn integrate(&mut self, percept: &Percept, step: usize) {
        if percept.location.is_empty() {
            return;
        }
        let entry = self.locations.entry(percept.location.clone()).or_default();
        entry.visits += 1;
        entry.last_seen_step = step;
        entry.entities = percept.entities.clone();
    }

    /// Number of distinct locations visited.
    pub fn coverage(&self) -> usize {
        self.locations.len()
    }

    /// Knowledge about a location, if visited.
    pub fn location(&self, name: &str) -> Option<&LocationKnowledge> {
        self.locations.get(name)
    }

    /// The visited location that has gone longest without observation —
    /// the natural re-exploration target when the world may have changed.
    pub fn stalest_location(&self) -> Option<&str> {
        self.locations
            .iter()
            .min_by_key(|(_, k)| k.last_seen_step)
            .map(|(name, _)| name.as_str())
    }

    /// Renders a compact prompt section: one line per location, most
    /// recently seen first, capped at `max_locations` lines.
    pub fn summary(&self, max_locations: usize) -> String {
        let mut locs: Vec<(&String, &LocationKnowledge)> = self.locations.iter().collect();
        locs.sort_by_key(|(_, k)| std::cmp::Reverse(k.last_seen_step));
        locs.iter()
            .take(max_locations)
            .map(|(name, k)| {
                if k.entities.is_empty() {
                    format!("{name}: nothing notable (seen step {})", k.last_seen_step)
                } else {
                    format!(
                        "{name}: {} (seen step {})",
                        k.entities.join(", "),
                        k.last_seen_step
                    )
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Streams the same text as [`Self::summary`] into `out` (appending),
    /// without allocating: the top-`max_locations` selection runs on a
    /// stack scratchpad and each line is written straight into the buffer.
    /// Ties on `last_seen_step` keep map (alphabetical) order, matching
    /// the stable sort in [`Self::summary`].
    pub fn write_summary(&self, out: &mut String, max_locations: usize) {
        use std::fmt::Write as _;
        const STACK: usize = 16;
        if max_locations == 0 || self.locations.is_empty() {
            return;
        }
        if max_locations > STACK {
            // Cold path for oversized requests; prompt callers cap at 6.
            out.push_str(&self.summary(max_locations));
            return;
        }
        let mut top: [Option<(&String, &LocationKnowledge)>; STACK] = [None; STACK];
        let mut len = 0usize;
        for entry in &self.locations {
            let step = entry.1.last_seen_step;
            let mut pos = len;
            for (i, slot) in top[..len].iter().enumerate() {
                if slot.expect("filled prefix").1.last_seen_step < step {
                    pos = i;
                    break;
                }
            }
            if pos >= max_locations {
                continue;
            }
            let new_len = (len + 1).min(max_locations);
            for i in (pos..new_len - 1).rev() {
                top[i + 1] = top[i];
            }
            top[pos] = Some(entry);
            len = new_len;
        }
        for (idx, slot) in top[..len].iter().enumerate() {
            let (name, k) = slot.expect("filled prefix");
            if idx > 0 {
                out.push('\n');
            }
            if k.entities.is_empty() {
                let _ = write!(
                    out,
                    "{name}: nothing notable (seen step {})",
                    k.last_seen_step
                );
            } else {
                let _ = write!(out, "{name}: ");
                for (j, e) in k.entities.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(e);
                }
                let _ = write!(out, " (seen step {})", k.last_seen_step);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn percept(location: &str, entities: &[&str]) -> Percept {
        Percept {
            entities: entities.iter().map(|e| (*e).to_owned()).collect(),
            text: String::new(),
            location: location.to_owned(),
        }
    }

    #[test]
    fn integrates_and_counts_coverage() {
        let mut map = WorldMap::new();
        map.integrate(&percept("room_0", &["goal_zone"]), 0);
        map.integrate(&percept("room_1", &["object_1"]), 1);
        map.integrate(&percept("room_0", &[]), 2);
        assert_eq!(map.coverage(), 2);
        assert_eq!(map.location("room_0").unwrap().visits, 2);
        assert_eq!(map.location("room_0").unwrap().last_seen_step, 2);
    }

    #[test]
    fn newest_observation_replaces_entities() {
        let mut map = WorldMap::new();
        map.integrate(&percept("room_1", &["object_1", "object_2"]), 1);
        map.integrate(&percept("room_1", &["object_2"]), 5);
        assert_eq!(
            map.location("room_1").unwrap().entities,
            vec!["object_2".to_owned()],
            "a later look supersedes the old entity list"
        );
    }

    #[test]
    fn stalest_location_is_the_reexploration_target() {
        let mut map = WorldMap::new();
        map.integrate(&percept("room_0", &[]), 0);
        map.integrate(&percept("room_1", &[]), 4);
        map.integrate(&percept("room_2", &[]), 9);
        assert_eq!(map.stalest_location(), Some("room_0"));
        map.integrate(&percept("room_0", &[]), 12);
        assert_eq!(map.stalest_location(), Some("room_1"));
    }

    #[test]
    fn summary_orders_by_recency_and_caps() {
        let mut map = WorldMap::new();
        for i in 0..6 {
            map.integrate(&percept(&format!("room_{i}"), &["x"]), i);
        }
        let summary = map.summary(3);
        assert_eq!(summary.lines().count(), 3);
        assert!(summary.lines().next().unwrap().starts_with("room_5"));
        assert!(!summary.contains("room_0"));
    }

    #[test]
    fn write_summary_matches_summary_byte_for_byte() {
        let mut map = WorldMap::new();
        // Distinct steps, a revisit, an entity-less room, and a tie on
        // last_seen_step (rooms 7 and 8) to pin the stable-sort order.
        for i in 0..7 {
            map.integrate(&percept(&format!("room_{i}"), &["x", "y"]), i);
        }
        map.integrate(&percept("room_2", &[]), 9);
        map.integrate(&percept("room_8", &["z"]), 10);
        map.integrate(&percept("room_7", &["w"]), 10);
        for cap in [0, 1, 3, 6, 12, 40] {
            let mut buf = String::from("prefix|");
            map.write_summary(&mut buf, cap);
            assert_eq!(buf, format!("prefix|{}", map.summary(cap)), "cap {cap}");
        }
        let empty = WorldMap::new();
        let mut buf = String::new();
        empty.write_summary(&mut buf, 6);
        assert!(buf.is_empty());
    }

    #[test]
    fn empty_location_percepts_are_ignored() {
        let mut map = WorldMap::new();
        map.integrate(&percept("", &["ghost"]), 0);
        assert_eq!(map.coverage(), 0);
        assert!(map.summary(5).is_empty());
        assert!(map.stalest_location().is_none());
    }
}
