//! Communication module: LLM-backed message generation between agents.
//!
//! Messages carry the sender's *actual* knowledge delta (entities it has
//! discovered), so message utility is measurable: a message is useful iff
//! some receiver learned something new from it — the counter behind the
//! paper's "only 20% of pre-generated messages lead to actual
//! communication" finding (§V-D).

use crate::prompt::PromptWriter;
use embodied_llm::{EngineHandle, InferenceOpts, LlmError, LlmRequest, LlmResponse, Purpose};

/// A message produced by one agent for broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct OutgoingMessage {
    /// Sender agent index.
    pub from: usize,
    /// Message text (concatenated into receivers' dialogue memory).
    pub text: String,
    /// Entity knowledge the message carries.
    pub entities: Vec<String>,
    /// The LLM response that generated it.
    pub response: LlmResponse,
}

/// The communication module, holding one tenant handle onto the shared
/// inference service.
#[derive(Debug, Clone)]
pub struct CommunicationModule {
    engine: EngineHandle,
    /// Reusable prompt buffer: rendered fresh each call, allocated once.
    prompt_buf: String,
}

impl CommunicationModule {
    /// Wraps an engine handle; a bare [`embodied_llm::LlmEngine`] or
    /// [`embodied_llm::ResilientEngine`] converts via a private
    /// single-tenant pass-through service.
    pub fn new(engine: impl Into<EngineHandle>) -> Self {
        CommunicationModule {
            engine: engine.into(),
            prompt_buf: String::new(),
        }
    }

    /// Read access to the engine (usage and resilience counters).
    pub fn engine(&self) -> &EngineHandle {
        &self.engine
    }

    /// Mutable access to the engine (stall draining).
    pub fn engine_mut(&mut self) -> &mut EngineHandle {
        &mut self.engine
    }

    /// Generates one outgoing message.
    ///
    /// `status` is the sender's own state line; `knowledge_delta` is what
    /// the sender has learned since it last broadcast (possibly empty — the
    /// redundant-message case).
    ///
    /// # Errors
    ///
    /// Propagates [`LlmError`] from the engine.
    #[allow(clippy::too_many_arguments)] // the full context is deliberate
    pub fn generate(
        &mut self,
        from: usize,
        preamble: &str,
        goal: &str,
        status: &str,
        dialogue_so_far: &str,
        knowledge_delta: &[String],
        difficulty: f64,
        opts: InferenceOpts,
    ) -> Result<OutgoingMessage, LlmError> {
        let mut w = PromptWriter::new(&mut self.prompt_buf, preamble);
        w.push("task goal", goal)
            .push("your status", status)
            .push("dialogue so far", dialogue_so_far)
            .push(
                "instruction",
                "Compose a short message to your teammates sharing anything \
                 they need to coordinate effectively.",
            );
        let response = self.engine.infer(
            LlmRequest::new(Purpose::Communication, self.prompt_buf.as_str(), 60)
                .with_difficulty(difficulty)
                .with_opts(opts),
        )?;

        let text = if knowledge_delta.is_empty() {
            format!("agent {from}: {status}. Proceeding with my current plan.")
        } else {
            format!(
                "agent {from}: {status}. I have located {}.",
                knowledge_delta.join(", ")
            )
        };
        Ok(OutgoingMessage {
            from,
            text,
            entities: knowledge_delta.to_vec(),
            response,
        })
    }

    /// Whether the planning-then-communication gate (Rec. 8) should allow a
    /// message this step: only when there is new knowledge to share or an
    /// explicit coordination need.
    pub fn worth_sending(knowledge_delta: &[String], needs_coordination: bool) -> bool {
        !knowledge_delta.is_empty() || needs_coordination
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embodied_llm::{LlmEngine, ModelProfile};

    fn module() -> CommunicationModule {
        CommunicationModule::new(LlmEngine::new(ModelProfile::gpt4_api(), 3))
    }

    #[test]
    fn message_carries_knowledge_delta() {
        let mut m = module();
        let msg = m
            .generate(
                1,
                "you are a communicator",
                "deliver objects",
                "in room_2, hands free",
                "",
                &["object_3".into()],
                0.4,
                InferenceOpts::default(),
            )
            .unwrap();
        assert!(msg.text.contains("object_3"));
        assert_eq!(msg.entities, vec!["object_3".to_owned()]);
        assert_eq!(msg.from, 1);
    }

    #[test]
    fn empty_delta_produces_redundant_message() {
        let mut m = module();
        let msg = m
            .generate(
                0,
                "you are a communicator",
                "deliver objects",
                "in room_0",
                "agent 1: hello",
                &[],
                0.4,
                InferenceOpts::default(),
            )
            .unwrap();
        assert!(msg.entities.is_empty());
        assert!(msg.text.contains("current plan"));
    }

    #[test]
    fn generation_costs_latency_and_tokens() {
        let mut m = module();
        let preamble = crate::prompt::system_preamble("CoELA", "communication");
        let msg = m
            .generate(
                0,
                &preamble,
                "deliver objects",
                "in room_0",
                "",
                &[],
                0.4,
                InferenceOpts::default(),
            )
            .unwrap();
        assert!(msg.response.latency.as_secs_f64() > 0.5);
        assert!(msg.response.prompt_tokens > 100);
    }

    #[test]
    fn rec8_gate() {
        assert!(!CommunicationModule::worth_sending(&[], false));
        assert!(CommunicationModule::worth_sending(&["x".into()], false));
        assert!(CommunicationModule::worth_sending(&[], true));
    }
}
