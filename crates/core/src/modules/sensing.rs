//! Sensing module: runs the perception front-end over the environment's
//! observation and produces a percept (recognized entities + prompt text).

use embodied_env::Observation;
use embodied_llm::EncoderProfile;
use embodied_profiler::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What sensing hands to the rest of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Percept {
    /// Names of entities the encoder recognized this step.
    pub entities: Vec<String>,
    /// Prompt-ready description of the (recognized part of the) scene.
    pub text: String,
    /// Current location label.
    pub location: String,
}

/// The sensing module.
#[derive(Debug, Clone)]
pub struct SensingModule {
    encoder: Option<EncoderProfile>,
    rng: StdRng,
}

impl SensingModule {
    /// Creates a sensing module. `encoder: None` means symbolic state access
    /// (DEPS-style): perfect recognition at negligible latency.
    pub fn new(encoder: Option<EncoderProfile>, seed: u64) -> Self {
        SensingModule {
            encoder,
            rng: StdRng::seed_from_u64(seed ^ 0x5e4e),
        }
    }

    /// The configured encoder, if any.
    pub fn encoder(&self) -> Option<&EncoderProfile> {
        self.encoder.as_ref()
    }

    /// Processes one observation, returning the percept and the encoder
    /// latency to bill to the sensing module.
    pub fn sense(&mut self, obs: &Observation) -> (Percept, SimDuration) {
        let (latency, recognition) = match &self.encoder {
            Some(enc) => (enc.frame_latency(obs.entity_count()), enc.recognition_rate),
            None => (SimDuration::from_millis(4), 1.0),
        };
        let mut entities = Vec::new();
        let mut described = Vec::new();
        for seen in &obs.visible {
            if self.rng.gen_bool(recognition.clamp(0.0, 1.0)) {
                entities.push(seen.name.clone());
                described.push(seen.description.clone());
            }
        }
        let mut text = String::new();
        if !obs.location.is_empty() {
            text.push_str(&format!("Location: {}. ", obs.location));
        }
        if !obs.status.is_empty() {
            text.push_str(&format!("{}. ", obs.status));
        }
        if described.is_empty() {
            text.push_str("Nothing notable detected.");
        } else {
            text.push_str(&format!("Detected: {}.", described.join("; ")));
        }
        (
            Percept {
                entities,
                text,
                location: obs.location.clone(),
            },
            latency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embodied_env::SeenEntity;

    fn obs(n: usize) -> Observation {
        Observation {
            agent_pos: None,
            location: "room_1".into(),
            visible: (0..n)
                .map(|i| SeenEntity::new(format!("obj_{i}"), format!("obj_{i} on the floor")))
                .collect(),
            status: "hands free".into(),
        }
    }

    #[test]
    fn symbolic_sensing_is_perfect_and_fast() {
        let mut s = SensingModule::new(None, 0);
        let (p, lat) = s.sense(&obs(5));
        assert_eq!(p.entities.len(), 5);
        assert!(lat < SimDuration::from_millis(10));
    }

    #[test]
    fn encoder_latency_scales_with_entities() {
        let mut s = SensingModule::new(Some(embodied_llm::EncoderProfile::mask_rcnn()), 0);
        let (_, small) = s.sense(&obs(1));
        let (_, big) = s.sense(&obs(12));
        assert!(big > small);
    }

    #[test]
    fn imperfect_recognition_drops_entities_sometimes() {
        // Mask R-CNN at 95%: over many frames of 10 entities, some misses.
        let mut s = SensingModule::new(Some(embodied_llm::EncoderProfile::mask_rcnn()), 7);
        let total: usize = (0..50).map(|_| s.sense(&obs(10)).0.entities.len()).sum();
        assert!(total < 500, "expected some recognition misses");
        assert!(total > 400, "recognition should still be mostly reliable");
    }

    #[test]
    fn percept_text_mentions_location_and_status() {
        let mut s = SensingModule::new(None, 0);
        let (p, _) = s.sense(&obs(1));
        assert!(p.text.contains("room_1"));
        assert!(p.text.contains("hands free"));
        assert!(p.text.contains("obj_0"));
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let mut s = SensingModule::new(Some(embodied_llm::EncoderProfile::vild()), seed);
            (0..10)
                .map(|_| s.sense(&obs(8)).0.entities.len())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }
}
