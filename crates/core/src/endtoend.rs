//! The end-to-end paradigm (paper §II-C, Fig. 1c): a single
//! vision-language-action model maps observations directly to actions —
//! no modular pipeline, no explicit memory, communication or reflection.
//!
//! The paper taxonomizes these systems (RT-2, RoboVLMs, Octo, …) but its
//! measured suite covers the modularized paradigms; this runner exists to
//! make the taxonomy executable and to demonstrate the paradigm's
//! characteristic trade-off: *much lower per-step latency* (one compact
//! forward pass instead of several LLM calls) against *degrading
//! reliability on long-horizon tasks* (no decomposition, memory or
//! self-correction to lean on).

use crate::orchestrator::Paradigm;
use embodied_env::{Environment, LowLevel, Subgoal, TaskDifficulty};
use embodied_llm::{Deployment, LlmEngine, LlmRequest, ModelProfile, Purpose, QualityModel};
use embodied_profiler::{
    EpisodeReport, LatencyBreakdown, MessageStats, ModuleKind, Outcome, Phase, PurposeLedger,
    StepRecord, Trace,
};

/// An RT-2-style vision-language-action profile: fast, compact action
/// decoding; competent on short horizons, brittle on long ones.
pub fn vla_profile() -> ModelProfile {
    ModelProfile {
        name: "VLA (RT-2-like)".into(),
        params_b: 55.0,
        deployment: Deployment::Local {
            // Action tokens decode quickly; the visual prefix dominates.
            prefill_tok_per_s: 900.0,
            decode_tok_per_s: 120.0,
        },
        context_window: 2_048,
        base_capability: 0.88,
        verbosity: 0.15, // a handful of action tokens
    }
}

/// The quality model for a VLA: identical structure, but long horizons
/// (difficulty) bite much harder — there is no planner to decompose the
/// task, so reliability decays per *remaining depth*, not per decision.
pub fn vla_quality_model() -> QualityModel {
    QualityModel {
        difficulty_weight: 0.85,
        ..Default::default()
    }
}

/// One end-to-end system: environment + one VLA model.
pub struct EndToEndSystem {
    env: Box<dyn Environment>,
    engine: LlmEngine,
    low: LowLevel,
    trace: Trace,
    step_records: Vec<StepRecord>,
    step: usize,
    /// Last failed action and the length of the failure streak: with no
    /// reflection module, a VLA has nothing to break perseveration loops.
    last_failure: Option<Subgoal>,
    failure_streak: usize,
}

impl std::fmt::Debug for EndToEndSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndToEndSystem")
            .field("env", &self.env.name())
            .field("step", &self.step)
            .finish_non_exhaustive()
    }
}

impl EndToEndSystem {
    /// Wraps an environment with a VLA policy.
    pub fn new(env: Box<dyn Environment>, seed: u64) -> Self {
        EndToEndSystem {
            env,
            engine: LlmEngine::new(vla_profile(), seed ^ 0xe2e)
                .with_quality_model(vla_quality_model()),
            low: LowLevel::controller(seed ^ 0xe2f),
            trace: Trace::new(),
            step_records: Vec::new(),
            step: 0,
            last_failure: None,
            failure_streak: 0,
        }
    }

    /// Runs the episode: per step, one forward pass straight from pixels to
    /// an action.
    pub fn run(&mut self) -> EpisodeReport {
        let max_steps = self.env.max_steps();
        let mut by_purpose = PurposeLedger::default();
        while self.step < max_steps && !self.env.is_complete() {
            self.trace.begin_step(self.step);
            let before = self.trace.elapsed();

            // The whole pipeline is one model: the observation is the
            // prompt, the action tokens are the completion.
            let obs = self.env.observe(0);
            let prompt = format!(
                "[instruction]\n{}\n[camera]\n{}\naction tokens:",
                self.env.goal_text(),
                obs.to_prompt_text()
            );
            let response = self
                .engine
                .infer(
                    LlmRequest::new(Purpose::ActionSelection, &prompt, 60)
                        .with_difficulty(self.env.difficulty().scalar()),
                )
                .expect("observation prompt is never empty");
            // The forward pass is sensing+planning+execution fused; bill it
            // to planning (the closest single bucket, as the paper's Fig. 1c
            // collapses the pipeline into the model).
            self.trace.record(
                ModuleKind::Planning,
                Phase::LlmInference,
                0,
                response.latency,
            );
            by_purpose.record(
                &response.purpose.to_string(),
                response.latency,
                response.prompt_tokens,
                response.output_tokens,
            );

            let oracle = self.env.oracle_subgoals(0);
            let candidates = self.env.candidate_subgoals(0);
            // No reflection: an unexplained failure both pulls the policy
            // into repeating itself and erodes its effective quality — the
            // compounding that makes end-to-end models short-horizon tools.
            let confusion = (0.15 * self.failure_streak as f64).min(0.45);
            // Compounding drift: without replanning or memory, a VLA's
            // reliability decays along the episode — fine for the
            // short-horizon tasks it is built for, fatal for deep chains.
            let horizon_decay = 1.0 / (1.0 + 0.03 * self.step as f64);
            let quality = (response.quality * (1.0 - confusion) * horizon_decay).clamp(0.02, 0.99);
            let perseverate = self.last_failure.clone().filter(|_| {
                let p = (0.4 + 0.15 * self.failure_streak as f64).min(0.7);
                self.engine.sample_correct(p)
            });
            let action = if let Some(repeat) = perseverate {
                repeat
            } else if self.engine.sample_correct(quality) && !oracle.is_empty() {
                oracle[0].clone()
            } else if candidates.is_empty() {
                Subgoal::Wait
            } else {
                candidates[self.engine.sample_index(candidates.len())].clone()
            };
            let outcome = self.env.execute(0, &action, &mut self.low);
            if outcome.completed || outcome.made_progress {
                self.last_failure = None;
                self.failure_streak = 0;
            } else {
                self.last_failure = Some(action.clone());
                self.failure_streak += 1;
            }
            self.trace.record(
                ModuleKind::Execution,
                Phase::Actuation,
                0,
                outcome.total_time(),
            );

            self.step_records.push(StepRecord {
                step: self.step,
                latency: self.trace.elapsed().saturating_sub(before),
                max_prompt_tokens: response.prompt_tokens,
                llm_calls: 1,
                progress: outcome.made_progress,
            });
            self.step += 1;
        }

        let outcome = if self.env.is_complete() {
            Outcome::Success
        } else if self.env.progress() == 0.0 {
            Outcome::Stuck
        } else {
            Outcome::StepLimit
        };
        let mut by_phase = PurposeLedger::default();
        for span in self.trace.spans() {
            by_phase.record(&span.phase.to_string(), span.duration, 0, 0);
        }
        EpisodeReport {
            workload: format!("VLA on {}", self.env.name()),
            outcome,
            steps: self.step,
            latency: self.trace.elapsed(),
            breakdown: LatencyBreakdown::from_trace(&self.trace),
            tokens: self.engine.usage(),
            by_purpose,
            by_phase,
            messages: MessageStats::default(),
            resilience: embodied_profiler::ResilienceStats::default(),
            agent_faults: embodied_profiler::AgentFaultStats::default(),
            channel: embodied_profiler::ChannelStats::default(),
            repairs: embodied_profiler::RepairStats::default(),
            serving: embodied_profiler::ServingStats::default(),
            serving_faults: embodied_profiler::ServingFaultStats::default(),
            env_faults: embodied_profiler::EnvFaultStats::default(),
            recovery: embodied_profiler::RecoveryStats::default(),
            step_records: self.step_records.clone(),
            agents: 1,
        }
    }
}

/// Convenience: run one VLA episode on an environment kind.
pub fn run_vla_episode(
    env: crate::workloads::EnvKind,
    difficulty: TaskDifficulty,
    seed: u64,
) -> EpisodeReport {
    EndToEndSystem::new(env.build(difficulty, 1, seed), seed).run()
}

/// Marker: which paradigm this module implements.
pub const PARADIGM_NOTE: (&str, Paradigm) = ("end-to-end (Fig. 1c)", Paradigm::SingleModular);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::EnvKind;

    #[test]
    fn vla_is_fast_per_step_on_short_horizons() {
        let report = run_vla_episode(EnvKind::Kitchen, TaskDifficulty::Easy, 3);
        assert!(report.steps > 0);
        // One compact forward pass per step: far under the modular 10-30 s.
        assert!(
            report.latency_per_step().as_secs_f64() < 8.0,
            "VLA step took {}",
            report.latency_per_step()
        );
    }

    #[test]
    fn vla_succeeds_on_short_horizon_tasks() {
        let successes = (0..6)
            .filter(|&seed| {
                run_vla_episode(EnvKind::Kitchen, TaskDifficulty::Easy, seed)
                    .outcome
                    .is_success()
            })
            .count();
        assert!(successes >= 4, "only {successes}/6 easy-kitchen successes");
    }

    #[test]
    fn vla_collapses_on_long_horizons() {
        // The diamond-pickaxe chain is exactly what §II-C says end-to-end
        // models are not built for.
        let successes = (0..6)
            .filter(|&seed| {
                run_vla_episode(EnvKind::Craft, TaskDifficulty::Hard, seed)
                    .outcome
                    .is_success()
            })
            .count();
        assert!(
            successes <= 2,
            "VLA should mostly fail long-horizon crafting ({successes}/6 succeeded)"
        );
    }

    #[test]
    fn single_llm_call_per_step() {
        let report = run_vla_episode(EnvKind::Kitchen, TaskDifficulty::Easy, 1);
        assert_eq!(report.tokens.calls as usize, report.steps);
        assert!(report.step_records.iter().all(|r| r.llm_calls == 1));
    }

    #[test]
    fn deterministic() {
        let a = run_vla_episode(EnvKind::Kitchen, TaskDifficulty::Medium, 9);
        let b = run_vla_episode(EnvKind::Kitchen, TaskDifficulty::Medium, 9);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.latency, b.latency);
    }
}
