//! Agent/system configuration: module toggles (Fig. 3), memory capacity
//! (Fig. 5), model overrides (Fig. 4), and the paper's recommended
//! optimizations (Recs. 1–10) as switchable flags.

use crate::guardrail::RepairPolicy;
use embodied_llm::{
    EncoderProfile, FaultProfile, ModelProfile, Quantization, RetryPolicy, SemanticFaultProfile,
    ServingConfig,
};
use embodied_profiler::{FromJson, JsonError, JsonValue, ToJson};
use serde::{Deserialize, Serialize};

/// Which building blocks are enabled — the knobs of the module-sensitivity
/// study (Fig. 3). Sensing and planning are never disabled: an agent that
/// cannot perceive or decide is not a system, it is a brick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleToggles {
    /// Inter-agent communication module.
    pub communication: bool,
    /// Memory module (observation / dialogue / action stores).
    pub memory: bool,
    /// Reflection module.
    pub reflection: bool,
    /// Low-level execution module (disabling forces the LLM to micro-manage
    /// primitives, per the paper §IV-B).
    pub execution: bool,
}

impl Default for ModuleToggles {
    fn default() -> Self {
        ModuleToggles {
            communication: true,
            memory: true,
            reflection: true,
            execution: true,
        }
    }
}

impl ModuleToggles {
    /// All modules on.
    pub fn all_on() -> Self {
        Self::default()
    }

    /// Convenience: all on except communication.
    pub fn without_communication() -> Self {
        ModuleToggles {
            communication: false,
            ..Self::default()
        }
    }

    /// Convenience: all on except memory.
    pub fn without_memory() -> Self {
        ModuleToggles {
            memory: false,
            ..Self::default()
        }
    }

    /// Convenience: all on except reflection.
    pub fn without_reflection() -> Self {
        ModuleToggles {
            reflection: false,
            ..Self::default()
        }
    }

    /// Convenience: all on except execution.
    pub fn without_execution() -> Self {
        ModuleToggles {
            execution: false,
            ..Self::default()
        }
    }
}

impl ToJson for ModuleToggles {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("communication".into(), JsonValue::Bool(self.communication)),
            ("memory".into(), JsonValue::Bool(self.memory)),
            ("reflection".into(), JsonValue::Bool(self.reflection)),
            ("execution".into(), JsonValue::Bool(self.execution)),
        ])
    }
}

impl FromJson for ModuleToggles {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(ModuleToggles {
            communication: value.bool_field("communication")?,
            memory: value.bool_field("memory")?,
            reflection: value.bool_field("reflection")?,
            execution: value.bool_field("execution")?,
        })
    }
}

/// How much past-step information the memory module retains (Fig. 5's
/// sweep variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryCapacity {
    /// Remember nothing beyond the current observation.
    None,
    /// Sliding window over the last `n` steps.
    Steps(usize),
    /// Full state-action history (the paper's inconsistency regime).
    Full,
}

impl Default for MemoryCapacity {
    fn default() -> Self {
        MemoryCapacity::Steps(8)
    }
}

impl MemoryCapacity {
    /// Window size for a given episode length.
    pub fn window(&self, history_len: usize) -> usize {
        match self {
            MemoryCapacity::None => 0,
            MemoryCapacity::Steps(n) => (*n).min(history_len),
            MemoryCapacity::Full => history_len,
        }
    }
}

impl ToJson for MemoryCapacity {
    fn to_json(&self) -> JsonValue {
        match self {
            MemoryCapacity::None => JsonValue::Str("none".into()),
            MemoryCapacity::Steps(n) => {
                JsonValue::Object(vec![("steps".into(), JsonValue::Num(*n as f64))])
            }
            MemoryCapacity::Full => JsonValue::Str("full".into()),
        }
    }
}

impl FromJson for MemoryCapacity {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if let Some(s) = value.as_str() {
            return match s {
                "none" => Ok(MemoryCapacity::None),
                "full" => Ok(MemoryCapacity::Full),
                other => Err(JsonError::msg(format!(
                    "unknown memory capacity: {other:?}"
                ))),
            };
        }
        let steps = value.u64_field("steps").map_err(|_| {
            JsonError::msg("MemoryCapacity: expected \"none\"/\"full\" or {\"steps\": n}")
        })?;
        Ok(MemoryCapacity::Steps(steps as usize))
    }
}

/// The paper's optimization recommendations as independent switches, used by
/// the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Optimizations {
    /// Rec. 1: aggregate same-step LLM queries into one batched call.
    pub batching: bool,
    /// Rec. 1: AWQ weight quantization for local models.
    pub quantization: Quantization,
    /// Rec. 1: KV-cache prefix reuse across consecutive calls.
    pub kv_cache: bool,
    /// Rec. 4: pose decisions as multiple-choice questions.
    pub multiple_choice: bool,
    /// Rec. 5: dual long-term/short-term memory structure.
    pub dual_memory: bool,
    /// Rec. 6: summarize dialogue/memory context instead of concatenating.
    pub summarization: bool,
    /// Rec. 7: one high-level plan guides up to this many consecutive
    /// low-level actions (1 = replan every step, the unoptimized default).
    pub plan_horizon: usize,
    /// Rec. 8: planning-then-communication — generate a message only when
    /// the plan actually needs coordination.
    pub plan_then_communicate: bool,
    /// Rec. 9: hierarchical clustering — agents cooperate centrally within
    /// clusters of this size, decentrally across clusters (0 = off).
    pub cluster_size: usize,
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations {
            batching: false,
            quantization: Quantization::None,
            kv_cache: false,
            multiple_choice: false,
            dual_memory: false,
            summarization: false,
            plan_horizon: 1,
            plan_then_communicate: false,
            cluster_size: 0,
        }
    }
}

impl ToJson for Optimizations {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("batching".into(), JsonValue::Bool(self.batching)),
            ("quantization".into(), self.quantization.to_json()),
            ("kv_cache".into(), JsonValue::Bool(self.kv_cache)),
            (
                "multiple_choice".into(),
                JsonValue::Bool(self.multiple_choice),
            ),
            ("dual_memory".into(), JsonValue::Bool(self.dual_memory)),
            ("summarization".into(), JsonValue::Bool(self.summarization)),
            (
                "plan_horizon".into(),
                JsonValue::Num(self.plan_horizon as f64),
            ),
            (
                "plan_then_communicate".into(),
                JsonValue::Bool(self.plan_then_communicate),
            ),
            (
                "cluster_size".into(),
                JsonValue::Num(self.cluster_size as f64),
            ),
        ])
    }
}

impl FromJson for Optimizations {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let opts = Optimizations {
            batching: value.bool_field("batching")?,
            quantization: Quantization::from_json(value.field("quantization")?)?,
            kv_cache: value.bool_field("kv_cache")?,
            multiple_choice: value.bool_field("multiple_choice")?,
            dual_memory: value.bool_field("dual_memory")?,
            summarization: value.bool_field("summarization")?,
            plan_horizon: value.u64_field("plan_horizon")? as usize,
            plan_then_communicate: value.bool_field("plan_then_communicate")?,
            cluster_size: value.u64_field("cluster_size")? as usize,
        };
        if opts.plan_horizon == 0 {
            return Err(JsonError::msg("Optimizations: plan_horizon must be >= 1"));
        }
        Ok(opts)
    }
}

/// Full per-agent configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Planning model.
    pub planner: ModelProfile,
    /// Communication model (absent for single-agent systems).
    pub communicator: Option<ModelProfile>,
    /// Reflection model (absent when the workload has no reflection).
    pub reflector: Option<ModelProfile>,
    /// Perception front-end (absent for symbolic sensing).
    pub encoder: Option<EncoderProfile>,
    /// Whether the workload runs a separate LLM action-selection pass after
    /// planning (CoELA's third run per step).
    pub separate_action_selection: bool,
    /// Multiplier on low-level planning compute (RoCo's joint-space
    /// trajectory planning bills `num_arms ×` the work).
    pub exec_compute_scale: f64,
    /// Sampling-based planner for arm trajectories (design-choice ablation).
    pub trajectory_planner: embodied_env::TrajectoryPlanner,
    /// Per-attempt actuation success probability (failure injection;
    /// default 0.97 — a well-calibrated testbed).
    pub actuator_reliability: f64,
    /// Pick objects through the AnyGrasp-style candidate pipeline
    /// (DaDu-E's execution module).
    pub grasp_pipeline: bool,
    /// Centralized workloads with a proposal-feedback-adjustment loop
    /// (COHERENT) run an extra message-extraction call per agent per step.
    pub central_feedback_extraction: bool,
    /// Module toggles.
    pub toggles: ModuleToggles,
    /// Memory capacity.
    pub memory_capacity: MemoryCapacity,
    /// Memory retrieval index (multimodal vs. text-embedding-only).
    pub retrieval_mode: crate::modules::RetrievalMode,
    /// Optimization switches.
    pub opts: Optimizations,
    /// Injected-fault profile applied to every LLM engine this config
    /// builds (agents and, for centralized paradigms, the central planner).
    /// Defaults to [`FaultProfile::none()`] — faults are strictly opt-in.
    pub fault_profile: FaultProfile,
    /// Retry/backoff policy the resilience wrapper applies around each
    /// engine.
    pub retry_policy: RetryPolicy,
    /// Agent-process fault schedule (crash/stall/recover, coordinator
    /// failover). Defaults to [`crate::faults::AgentFaultProfile::none()`]
    /// — agent faults are strictly opt-in.
    pub agent_fault_profile: crate::faults::AgentFaultProfile,
    /// Message-channel fault profile (drop/duplicate/corrupt/delay/
    /// partition). Defaults to [`crate::faults::ChannelProfile::none()`].
    pub channel_profile: crate::faults::ChannelProfile,
    /// Content-plane (semantic) fault profile stamped onto planning-engine
    /// responses. Defaults to [`SemanticFaultProfile::none()`] — content
    /// faults are strictly opt-in.
    pub semantic_fault_profile: SemanticFaultProfile,
    /// Guardrail repair policy applied to every LLM plan decision before
    /// actuation. Defaults to [`RepairPolicy::Off`] — validation is
    /// strictly opt-in.
    pub repair_policy: RepairPolicy,
    /// Shared-inference-service scheduling knobs (cross-tenant batching,
    /// backend concurrency limit, replica count) plus the serving fault
    /// plane and its SLO resilience tier (replica crashes/brownouts,
    /// deadlines, hedging, load shedding). Defaults to
    /// [`ServingConfig::disabled()`] — a pure pass-through under which
    /// every call takes the legacy path and draw order, and the serving
    /// fault injector draws nothing.
    pub serving: ServingConfig,
    /// Embodied fault plane: perception faults (entity dropout, phantoms,
    /// stale frames, landmark misreads) and actuation faults (silent
    /// failures, partial slips, actuator downtime) applied by wrapping the
    /// environment in [`embodied_env::FaultyEnv`]. Defaults to
    /// [`embodied_env::EnvFaultProfile::none()`] — the bare environment
    /// runs unwrapped and the env-fault RNG stream draws nothing.
    pub env_fault_profile: embodied_env::EnvFaultProfile,
    /// Closed-loop recovery stack (watchdog re-observation, bounded action
    /// retry with replan escalation, re-ground-on-phantom). Defaults to
    /// [`crate::recovery::RecoveryPolicy::Off`] — recovery is strictly
    /// opt-in.
    pub recovery_policy: crate::recovery::RecoveryPolicy,
}

impl AgentConfig {
    /// A minimal single-agent GPT-4 configuration, used in tests and as a
    /// base for workload specs.
    pub fn gpt4_modular() -> Self {
        AgentConfig {
            planner: ModelProfile::gpt4_api(),
            communicator: None,
            reflector: Some(ModelProfile::gpt4_api()),
            encoder: Some(EncoderProfile::vit()),
            separate_action_selection: false,
            exec_compute_scale: 1.0,
            trajectory_planner: embodied_env::TrajectoryPlanner::default(),
            actuator_reliability: 0.97,
            grasp_pipeline: false,
            central_feedback_extraction: false,
            toggles: ModuleToggles::default(),
            memory_capacity: MemoryCapacity::default(),
            retrieval_mode: crate::modules::RetrievalMode::default(),
            opts: Optimizations::default(),
            fault_profile: FaultProfile::none(),
            retry_policy: RetryPolicy::standard(),
            agent_fault_profile: crate::faults::AgentFaultProfile::none(),
            channel_profile: crate::faults::ChannelProfile::none(),
            semantic_fault_profile: SemanticFaultProfile::none(),
            repair_policy: RepairPolicy::Off,
            serving: ServingConfig::disabled(),
            env_fault_profile: embodied_env::EnvFaultProfile::none(),
            recovery_policy: crate::recovery::RecoveryPolicy::Off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_toggles_all_on() {
        let t = ModuleToggles::default();
        assert!(t.communication && t.memory && t.reflection && t.execution);
    }

    #[test]
    fn convenience_toggles_disable_exactly_one() {
        assert!(!ModuleToggles::without_communication().communication);
        assert!(ModuleToggles::without_communication().memory);
        assert!(!ModuleToggles::without_memory().memory);
        assert!(!ModuleToggles::without_reflection().reflection);
        assert!(!ModuleToggles::without_execution().execution);
    }

    #[test]
    fn memory_windows() {
        assert_eq!(MemoryCapacity::None.window(100), 0);
        assert_eq!(MemoryCapacity::Steps(8).window(100), 8);
        assert_eq!(MemoryCapacity::Steps(8).window(3), 3);
        assert_eq!(MemoryCapacity::Full.window(100), 100);
    }

    #[test]
    fn default_optimizations_are_all_off() {
        let o = Optimizations::default();
        assert!(!o.batching && !o.multiple_choice && !o.dual_memory);
        assert!(!o.summarization && !o.plan_then_communicate);
        assert_eq!(o.plan_horizon, 1);
        assert_eq!(o.cluster_size, 0);
        assert_eq!(o.quantization, Quantization::None);
    }

    #[test]
    fn default_serving_is_passthrough() {
        // The byte-identity contract hinges on this default: no batching,
        // no concurrency limit, no scheduling side effects.
        assert!(AgentConfig::gpt4_modular().serving.is_passthrough());
    }

    #[test]
    fn base_config_is_complete() {
        let c = AgentConfig::gpt4_modular();
        assert!(c.reflector.is_some());
        assert!(c.encoder.is_some());
        assert!(c.communicator.is_none());
    }
}
