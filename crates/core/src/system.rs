//! The embodied system: an environment plus its agents (and, for
//! centralized paradigms, a central planner), driven step by step while a
//! [`Trace`] accounts every module's simulated latency.

use crate::agent::ModularAgent;
use crate::config::AgentConfig;
use crate::faults::{AgentFaultEvent, AgentFaultState, ChannelState, DelayedMessage, DeliveryFate};
use crate::modules::{
    CommunicationModule, MemoryModule, Percept, PlanContext, PlanningModule, RecordKind,
};
use crate::orchestrator::{self, Paradigm};
use crate::prompt::system_preamble;
use crate::recovery::RecoveryPolicy;
use embodied_env::{Environment, ExecOutcome, Subgoal};
use embodied_llm::{
    EngineBuilder, InferenceOpts, InferenceService, LlmEngine, LlmError, LlmRequest, LlmResponse,
    Purpose, ServingConfig, TenantId, TenantOwner, WindowShare,
};
use embodied_profiler::{
    EpisodeReport, LatencyBreakdown, MessageStats, ModuleKind, Outcome, Phase, PurposeLedger,
    RecoveryStats, RepairStats, ResilienceStats, SimDuration, StepRecord, Trace,
};

/// Nominal watchdog + reboot latency billed when a process crashes.
const CRASH_REBOOT: SimDuration = SimDuration::from_secs(5);

/// Latency of the deterministic failover election round.
const FAILOVER_ELECTION: SimDuration = SimDuration::from_secs(2);

/// Client-side dispatch overhead billed when a hedged duplicate is issued
/// to a second serving replica.
const HEDGE_DISPATCH: SimDuration = SimDuration::from_millis(2);

/// Marker span billed when serving admission control fast-fails a request
/// — the rejection round-trip, not real inference time.
const SHED_MARKER: SimDuration = SimDuration::from_millis(2);

/// Dispatch overhead billed per closed-loop action retry — the decision to
/// re-issue the primitive; the retry's real compute/actuation is billed by
/// the execution phase it re-runs.
const ACT_RETRY_DISPATCH: SimDuration = SimDuration::from_millis(2);

/// Per-step counters the orchestrators update through [`EmbodiedSystem`]
/// helpers; they feed the step-record time series (Fig. 6).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct StepCounters {
    pub llm_calls: u64,
    pub max_prompt_tokens: u64,
    pub progressed: bool,
}

/// Central planner state for centralized/hybrid paradigms.
#[derive(Debug)]
pub(crate) struct CentralPlanner {
    pub planning: PlanningModule,
    pub communication: Option<CommunicationModule>,
    pub memory: MemoryModule,
    pub preamble: String,
    /// Reusable render buffer for the central memory section (same role as
    /// [`ModularAgent::memory_buf`]).
    pub memory_buf: String,
}

/// One windowed LLM call awaiting its amortized latency share when the
/// serving window closes.
#[derive(Debug)]
pub(crate) struct PendingCall {
    module: ModuleKind,
    agent: usize,
    response: LlmResponse,
}

/// A fully assembled embodied system ready to run one episode.
pub struct EmbodiedSystem {
    pub(crate) env: Box<dyn Environment>,
    pub(crate) agents: Vec<ModularAgent>,
    pub(crate) central: Option<CentralPlanner>,
    pub(crate) paradigm: Paradigm,
    pub(crate) trace: Trace,
    pub(crate) messages: MessageStats,
    pub(crate) counters: StepCounters,
    pub(crate) step: usize,
    pub(crate) by_purpose: PurposeLedger,
    /// Graceful-degradation events (per-module counters); engine-level
    /// fault/retry tallies are collected from the engines at report time.
    pub(crate) degradations: ResilienceStats,
    /// Agent-process fault state: crash/stall schedules, coordinator
    /// liveness, failover bookkeeping.
    pub(crate) agent_faults: AgentFaultState,
    /// Message-channel fault state: partition window, delayed queue.
    pub(crate) channel: ChannelState,
    /// Guardrail validation/repair accounting (all zero while the repair
    /// policy is `Off`).
    pub(crate) repairs: RepairStats,
    /// Closed-loop recovery policy: watchdog re-observation, bounded action
    /// retry with replan escalation, re-ground-on-phantom. `Off` (the
    /// default) disables every mechanism.
    pub(crate) recovery_policy: RecoveryPolicy,
    /// Recovery accounting (all zero while the recovery policy is `Off`).
    pub(crate) recovery_stats: RecoveryStats,
    /// Last step at which each agent made environment progress — the
    /// stuck-detection watchdog's memory.
    pub(crate) last_progress: Vec<usize>,
    /// The shared inference service every engine in this system is a
    /// tenant of — owns the engine stacks, the per-tenant ledger, and the
    /// per-model scheduling backends.
    pub(crate) service: InferenceService,
    /// The fleet episode scope this system's tenants registered under, or
    /// `None` outside fleet mode. With a scope set, serving windows defer
    /// their close to the fleet runner's `BatchWindowClose` event and the
    /// report reads the scoped ledgers.
    pub(crate) fleet_scope: Option<usize>,
    /// System-level scheduling knobs (cached from the first agent config;
    /// serving is a property of the shared stack, not of one agent).
    pub(crate) serving: ServingConfig,
    /// Calls deferred into the currently open serving window.
    pub(crate) window_entries: Vec<PendingCall>,
    workload: String,
    step_records: Vec<StepRecord>,
}

impl std::fmt::Debug for EmbodiedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbodiedSystem")
            .field("workload", &self.workload)
            .field("paradigm", &self.paradigm)
            .field("agents", &self.agents.len())
            .field("step", &self.step)
            .finish_non_exhaustive()
    }
}

impl EmbodiedSystem {
    /// Assembles a system over `env` with one agent per environment agent,
    /// all sharing `config`.
    pub fn new(
        workload: impl Into<String>,
        env: Box<dyn Environment>,
        config: &AgentConfig,
        paradigm: Paradigm,
        seed: u64,
    ) -> Self {
        // The serving fault plane draws from its own salted stream derived
        // from the episode seed — independent of every engine stream.
        let service = InferenceService::with_seed(config.serving, seed);
        Self::with_shared_service(workload, env, config, paradigm, seed, service, None)
    }

    /// Assembles a system whose engines register as tenants of an
    /// *existing* service — the fleet path, where N episodes share one
    /// serving stack. `fleet_scope` stamps every tenant with its episode
    /// scope; the single-episode [`EmbodiedSystem::new`] passes `None` and
    /// a private service, making it the exact legacy construction.
    pub(crate) fn with_shared_service(
        workload: impl Into<String>,
        env: Box<dyn Environment>,
        config: &AgentConfig,
        paradigm: Paradigm,
        seed: u64,
        service: InferenceService,
        fleet_scope: Option<usize>,
    ) -> Self {
        let workload = workload.into();
        let landmarks = env.landmarks();
        if let Some(scope) = fleet_scope {
            // Tenants registered below must carry this episode's scope.
            service.set_fleet_scope(scope);
        }
        let agents: Vec<ModularAgent> = (0..env.num_agents())
            .map(|id| {
                ModularAgent::new(
                    id,
                    &workload,
                    config.clone(),
                    landmarks.clone(),
                    seed,
                    &service,
                )
            })
            .collect();
        // The central planner's stack shares the builder layering with the
        // agents but draws from its own fault/backoff stream bases.
        let builder = EngineBuilder::new(
            config.fault_profile,
            config.retry_policy,
            seed ^ 0xfacc00,
            seed ^ 0xb0cc00,
        );
        let central = match paradigm {
            Paradigm::Centralized | Paradigm::Hybrid => Some(CentralPlanner {
                planning: PlanningModule::new(
                    service.register(
                        builder.wrap(
                            LlmEngine::new(config.planner.clone(), seed ^ 0xcc01)
                                .with_semantic_faults(
                                    config.semantic_fault_profile,
                                    seed ^ 0x5ecc01,
                                ),
                            0x01,
                        ),
                        TenantOwner::Central,
                    ),
                ),
                communication: config
                    .communicator
                    .as_ref()
                    .filter(|_| config.toggles.communication)
                    .map(|p| {
                        CommunicationModule::new(service.register(
                            builder.wrap(LlmEngine::new(p.clone(), seed ^ 0xcc02), 0x02),
                            TenantOwner::Central,
                        ))
                    }),
                memory: MemoryModule::new(
                    config.toggles.memory,
                    config.memory_capacity,
                    config.opts.dual_memory,
                    config.opts.summarization,
                    landmarks,
                ),
                preamble: system_preamble(&workload, "central planning"),
                memory_buf: String::new(),
            }),
            _ => None,
        };
        let team = agents.len();
        EmbodiedSystem {
            env,
            agents,
            central,
            paradigm,
            trace: Trace::new(),
            messages: MessageStats::default(),
            counters: StepCounters::default(),
            step: 0,
            by_purpose: PurposeLedger::default(),
            degradations: ResilienceStats::default(),
            agent_faults: AgentFaultState::new(config.agent_fault_profile, seed, team),
            channel: ChannelState::new(config.channel_profile, seed),
            repairs: RepairStats::default(),
            recovery_policy: config.recovery_policy,
            recovery_stats: RecoveryStats::default(),
            last_progress: vec![0; team],
            service,
            fleet_scope,
            serving: config.serving,
            window_entries: Vec::new(),
            workload,
            step_records: Vec::new(),
        }
    }

    /// Assembles a *heterogeneous* system: one explicit config per agent
    /// (COHERENT-style teams of dissimilar robots). The first config also
    /// parameterizes the central planner for centralized/hybrid paradigms.
    ///
    /// # Panics
    ///
    /// Panics if `configs.len()` does not match the environment's agent
    /// count, or is empty.
    pub fn with_agent_configs(
        workload: impl Into<String>,
        env: Box<dyn Environment>,
        configs: &[AgentConfig],
        paradigm: Paradigm,
        seed: u64,
    ) -> Self {
        assert!(!configs.is_empty(), "need at least one agent config");
        assert_eq!(
            configs.len(),
            env.num_agents(),
            "one config per environment agent"
        );
        let mut system = Self::new(workload, env, &configs[0], paradigm, seed);
        let landmarks = system.env.landmarks();
        let name = system.workload.clone();
        let service = system.service.clone();
        for (id, config) in configs.iter().enumerate().skip(1) {
            // The replaced agent's tenants stay registered but are never
            // driven again: their ledgers hold zero and stay zero.
            system.agents[id] =
                ModularAgent::new(id, &name, config.clone(), landmarks.clone(), seed, &service);
        }
        system
    }

    /// The workload name.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The episode's span timeline (e.g. for [`embodied_profiler::chrome_trace_json`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Runs the episode to completion or the step budget, returning the
    /// full report.
    pub fn run(&mut self) -> EpisodeReport {
        while self.step_once() {}
        self.report()
    }

    /// Advances the episode by exactly one environment step — fault-plane
    /// bookkeeping, the paradigm's orchestration pass, and the per-step
    /// record — returning `false` (without advancing) once the episode is
    /// over. Benchmarks and throughput harnesses drive this directly;
    /// [`Self::run`] loops it to completion.
    pub fn step_once(&mut self) -> bool {
        if self.episode_over() {
            return false;
        }
        self.trace.begin_step(self.step);
        if self.serving_active() {
            // The step loop is a synchronization barrier: backend
            // queues never carry over into the next step.
            self.service.begin_step();
        }
        self.counters = StepCounters::default();
        let before = self.trace.elapsed();
        self.begin_fault_step();
        match self.paradigm {
            Paradigm::SingleModular => orchestrator::single::step(self),
            Paradigm::Centralized => orchestrator::centralized::step(self),
            Paradigm::Decentralized => orchestrator::decentralized::step(self),
            Paradigm::Hybrid => orchestrator::hybrid::step(self),
        }
        let latency = self.trace.elapsed().saturating_sub(before);
        self.step_records.push(StepRecord {
            step: self.step,
            latency,
            max_prompt_tokens: self.counters.max_prompt_tokens,
            llm_calls: self.counters.llm_calls,
            progress: self.counters.progressed,
        });
        self.step += 1;
        true
    }

    /// The episode report as of the current step (final when the episode
    /// has ended).
    pub fn report(&self) -> EpisodeReport {
        let outcome = if self.env.is_complete() {
            Outcome::Success
        } else if self.env.progress() == 0.0 {
            Outcome::Stuck
        } else {
            Outcome::StepLimit
        };
        // The service ledger covers every engine in the system — agents
        // and central alike — so accounting cannot drift from wiring. In
        // fleet mode every query narrows to this episode's scope: the
        // shared service hosts N episodes' tenants at once.
        let tokens = match self.fleet_scope {
            Some(scope) => self.service.total_usage_for_scope(scope),
            None => self.service.total_usage(),
        };
        let mut by_phase = PurposeLedger::default();
        for span in self.trace.spans() {
            by_phase.record(&span.phase.to_string(), span.duration, 0, 0);
        }
        let mut resilience = self.degradations;
        resilience.merge(&match self.fleet_scope {
            Some(scope) => self.service.total_resilience_for_scope(scope),
            None => self.service.total_resilience(),
        });
        EpisodeReport {
            workload: self.workload.clone(),
            outcome,
            steps: self.step,
            latency: self.trace.elapsed(),
            breakdown: LatencyBreakdown::from_trace(&self.trace),
            tokens,
            by_purpose: self.by_purpose.clone(),
            by_phase,
            messages: self.messages,
            resilience,
            agent_faults: self.agent_faults.stats,
            channel: self.channel.stats,
            repairs: self.repairs,
            serving: match self.fleet_scope {
                Some(scope) => self.service.scope_stats(scope),
                None => self.service.stats(),
            },
            serving_faults: match self.fleet_scope {
                Some(scope) => self.service.scope_fault_stats(scope),
                None => self.service.fault_stats(),
            },
            env_faults: self.env.env_fault_stats(),
            recovery: self.recovery_stats,
            step_records: self.step_records.clone(),
            agents: self.agents.len(),
        }
    }

    // ----- shared inference-service scheduling -----

    /// Whether the serving layer schedules anything at all this episode.
    /// While false (the default), every call takes the legacy path.
    pub(crate) fn serving_active(&self) -> bool {
        !self.serving.is_passthrough()
    }

    /// Whether cross-tenant batch windows are enabled.
    pub(crate) fn serving_batching(&self) -> bool {
        self.serving.batching
    }

    /// Opens a batch window over a same-phase fan-out whose prompts all
    /// start with `shared_prefix` (the workload's system preamble).
    pub(crate) fn open_serving_window(&mut self, opts: InferenceOpts, shared_prefix: &str) {
        self.service.open_window(opts, shared_prefix);
    }

    /// Closes the current window: every deferred call receives its
    /// amortized share as a `Phase::Batch` span (plus a `Phase::Queue`
    /// span on the member that led a queued batch) and is only now fed
    /// into the step counters / per-purpose ledger, at its share latency.
    pub(crate) fn close_serving_window(&mut self) {
        if self.fleet_scope.is_some() {
            // Fleet mode: the window lives on the shared virtual clock and
            // only the runner's `BatchWindowClose` event may close it —
            // possibly merging this episode's calls with another's. The
            // deferred entries stay parked until `settle_fleet_shares`.
            return;
        }
        let shares = self.service.close_window(self.trace.now());
        let entries = std::mem::take(&mut self.window_entries);
        debug_assert_eq!(shares.len(), entries.len());
        for (entry, share) in entries.into_iter().zip(shares) {
            if !share.queue.is_zero() {
                self.trace
                    .record(entry.module, Phase::Queue, entry.agent, share.queue);
            }
            self.trace
                .record(entry.module, Phase::Batch, entry.agent, share.share);
            let mut response = entry.response;
            response.latency = share.share;
            self.note_llm(&response);
        }
    }

    /// Whether the episode has nothing left to do: the step budget is
    /// spent or the environment reached its goal. `step_once` checks this
    /// before advancing; the fleet runner checks it to tell a parked
    /// episode from a finished one.
    pub(crate) fn episode_over(&self) -> bool {
        self.step >= self.env.max_steps() || self.env.is_complete()
    }

    /// Number of calls parked in the open serving window — nonzero means
    /// the episode is waiting on a fleet `BatchWindowClose` before its
    /// next step can be attributed.
    pub(crate) fn pending_window_entries(&self) -> usize {
        self.window_entries.len()
    }

    /// Applies the fleet runner's window shares to this episode: each
    /// deferred call receives its amortized `Phase::Batch` span (plus a
    /// `Phase::Queue` span for lead wait) exactly as
    /// [`Self::close_serving_window`] would have recorded it, but after
    /// the fact — the window closed on the shared virtual clock, outside
    /// this episode's step. The re-attributed time and call counts are
    /// folded back into the step record that deferred them.
    pub(crate) fn settle_fleet_shares(&mut self, shares: &[WindowShare]) {
        let entries = std::mem::take(&mut self.window_entries);
        debug_assert_eq!(shares.len(), entries.len());
        let before = self.trace.elapsed();
        let mut calls = 0u64;
        let mut max_prompt = 0u64;
        for (entry, share) in entries.into_iter().zip(shares) {
            if !share.queue.is_zero() {
                self.trace
                    .record(entry.module, Phase::Queue, entry.agent, share.queue);
            }
            self.trace
                .record(entry.module, Phase::Batch, entry.agent, share.share);
            let response = entry.response;
            calls += 1;
            max_prompt = max_prompt.max(response.prompt_tokens);
            self.by_purpose.record(
                &response.purpose.to_string(),
                share.share,
                response.prompt_tokens,
                response.output_tokens,
            );
        }
        let delta = self.trace.elapsed().saturating_sub(before);
        if let Some(rec) = self.step_records.last_mut() {
            rec.latency += delta;
            rec.llm_calls += calls;
            rec.max_prompt_tokens = rec.max_prompt_tokens.max(max_prompt);
        }
    }

    /// Routes one completed LLM call through the serving layer.
    ///
    /// Pass-through (the default) records the `Phase::LlmInference` span
    /// exactly where and how the legacy per-module path did. With
    /// scheduling active, a cohort call joining an open window is
    /// deferred — its time is re-attributed at [`Self::close_serving_window`]
    /// and the caller must skip its own `note_llm` (returns `true`) —
    /// while any other call is first charged its backend's queueing delay
    /// (`Phase::Queue`): cohort calls reserve a server slot, dependent
    /// follow-ups only wait for one. Static, taking disjoint field
    /// borrows, so call sites holding `&mut self.agents[i]` can use it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn serve_llm_response(
        trace: &mut Trace,
        service: &InferenceService,
        serving: ServingConfig,
        window_entries: &mut Vec<PendingCall>,
        module: ModuleKind,
        agent: usize,
        tenant: TenantId,
        response: &LlmResponse,
        cohort: bool,
    ) -> bool {
        if serving.is_passthrough() {
            trace.record(module, Phase::LlmInference, agent, response.latency);
            return false;
        }
        if cohort && service.window_is_open() {
            service.window_add(tenant, response);
            window_entries.push(PendingCall {
                module,
                agent,
                response: response.clone(),
            });
            return true;
        }
        let now = trace.now();
        if cohort {
            let out = service.submit_cohort(tenant, now, response);
            if !out.failover.is_zero() {
                // Partial service wasted on a replica that crashed
                // mid-request, before the healthy peer took over.
                trace.record(module, Phase::Failover, agent, out.failover);
            }
            if out.hedged.is_some() {
                trace.record(module, Phase::Hedge, agent, HEDGE_DISPATCH);
            }
            // Brownout inflation rides the wait span: the caller observes
            // it as extra time-to-first-token on a degraded replica.
            let wait = out.queue + out.slowdown;
            if !wait.is_zero() {
                trace.record(module, Phase::Queue, agent, wait);
            }
        } else {
            let queue = service.queue_solo(tenant, now);
            if !queue.is_zero() {
                trace.record(module, Phase::Queue, agent, queue);
            }
        }
        trace.record(module, Phase::LlmInference, agent, response.latency);
        false
    }

    /// [`Self::serve_llm_response`] for call sites without live agent
    /// borrows.
    pub(crate) fn serve_response(
        &mut self,
        module: ModuleKind,
        agent: usize,
        tenant: TenantId,
        response: &LlmResponse,
        cohort: bool,
    ) -> bool {
        Self::serve_llm_response(
            &mut self.trace,
            &self.service,
            self.serving,
            &mut self.window_entries,
            module,
            agent,
            tenant,
            response,
            cohort,
        )
    }

    // ----- agent/channel fault plumbing -----

    /// Whether the agent/channel fault layer can do anything this episode
    /// (gates the heartbeat machinery so fault-free runs pay nothing).
    pub(crate) fn faults_active(&self) -> bool {
        !self.agent_faults.profile().is_none() || !self.channel.profile().is_none()
    }

    /// Begin-of-step fault processing: channel partition bookkeeping, agent
    /// crash/stall/recover draws (with `Phase::Crash` spans and state
    /// cleanup for freshly crashed processes), and — for centralized
    /// paradigms — the coordinator failover election plus its re-sync cost.
    /// A no-op performing zero draws when both profiles are `none()`.
    fn begin_fault_step(&mut self) {
        let step = self.step;
        // Embodied fault plane: a `FaultyEnv` wrapper draws this step's
        // perception/actuation faults here; the bare environments' default
        // hook is a no-op.
        self.env.begin_step(step);
        self.channel.begin_step(step);
        let events = self.agent_faults.begin_step(step, self.central.is_some());
        for event in events {
            match event {
                AgentFaultEvent::Crashed(i) => {
                    // The process dies losing its in-flight state: pending
                    // messages and the remaining plan budget are gone.
                    self.agents[i].inbox.clear();
                    self.agents[i].plan_budget = 0;
                    self.trace
                        .record(ModuleKind::Execution, Phase::Crash, i, CRASH_REBOOT);
                }
                AgentFaultEvent::Recovered(_) => {}
                AgentFaultEvent::CoordinatorCrashed => {
                    let host = self.agent_faults.coordinator;
                    self.trace
                        .record(ModuleKind::Planning, Phase::Crash, host, CRASH_REBOOT);
                }
            }
        }
        if self.central.is_some() && self.agent_faults.coordinator_down() {
            if let Some(promoted) = self.agent_faults.maybe_failover(step) {
                self.trace.record(
                    ModuleKind::Planning,
                    Phase::Failover,
                    promoted,
                    FAILOVER_ELECTION,
                );
                self.resync_coordinator(promoted);
            }
        }
    }

    /// A promoted coordinator pays a real re-sync inference: one planning
    /// call that rebuilds the joint picture, billed in tokens, latency, and
    /// a `Phase::Resync` span.
    fn resync_coordinator(&mut self, promoted: usize) {
        let difficulty = self.env.difficulty().scalar();
        let goal = self.env.goal_text();
        let n = self.agents.len();
        let opts = Self::infer_opts_for(&self.agents[0].config, n);
        let Some(central) = self.central.as_mut() else {
            return;
        };
        let prompt = format!(
            "{}\n[failover] agent {promoted} is assuming the coordinator role. \
             Re-synchronize: re-ingest the status of all {n} agents and the \
             task goal ({goal}), then resume joint planning.",
            central.preamble
        );
        let result = central.planning.engine_mut().infer(
            LlmRequest::new(Purpose::Planning, &prompt, 40 + 10 * n as u64)
                .with_difficulty(difficulty)
                .with_opts(opts),
        );
        let stall = central.planning.engine_mut().take_stall();
        Self::note_stall(&mut self.trace, ModuleKind::Planning, promoted, stall);
        match result {
            Ok(response) => {
                self.trace.record(
                    ModuleKind::Planning,
                    Phase::Resync,
                    promoted,
                    response.latency,
                );
                self.agent_faults.stats.resync_tokens +=
                    response.prompt_tokens + response.output_tokens;
                self.note_llm(&response);
            }
            Err(err) => {
                // The re-sync call itself faulted out; the promoted
                // coordinator starts from whatever the central memory holds.
                Self::note_llm_failure(&mut self.trace, ModuleKind::Planning, promoted, &err);
                self.degradations.degraded_planning += 1;
            }
        }
    }

    /// [`EmbodiedSystem::sense_phase`] for fault-aware loops: a crashed or
    /// stalled agent files no report, so the caller gets a placeholder
    /// percept that touches neither the environment nor the agent's memory.
    pub(crate) fn sense_phase_or_placeholder(&mut self, i: usize) -> Percept {
        if self.agent_faults.is_active(i) {
            self.sense_phase(i)
        } else {
            Percept {
                entities: Vec::new(),
                text: format!("agent {i} unresponsive (no report this step)"),
                location: String::new(),
            }
        }
    }

    /// Delivers channel-held messages that have reached their due step into
    /// recipient inboxes/memories (called by the decentralized loop right
    /// after it clears inboxes). Late deliveries never count toward message
    /// usefulness — by the time they land, the knowledge is stale.
    pub(crate) fn flush_delayed(&mut self) {
        if self.channel.delayed.is_empty() {
            return;
        }
        let step = self.step;
        for msg in self.channel.due_messages(step) {
            if self.agent_faults.is_down(msg.to) {
                self.agent_faults.stats.missed_messages += 1;
                continue;
            }
            let agent = &mut self.agents[msg.to];
            for _ in 0..msg.copies {
                agent
                    .memory
                    .store(RecordKind::Dialogue, msg.text.clone(), msg.entities.clone());
                agent.inbox.push(msg.text.clone());
            }
        }
    }

    // ----- shared phase helpers used by the orchestrators -----

    /// Records a non-zero backoff stall as a `Phase::Backoff` span so retry
    /// waiting extends episode latency end-to-end. Zero stalls are dropped,
    /// keeping no-fault traces byte-identical to pre-resilience runs.
    pub(crate) fn note_stall(
        trace: &mut Trace,
        module: ModuleKind,
        agent: usize,
        stall: SimDuration,
    ) {
        if !stall.is_zero() {
            trace.record(module, Phase::Backoff, agent, stall);
        }
    }

    /// Records the serving tier's fast-fail marker when an inference was
    /// rejected by admission control. Every other failure kind leaves the
    /// trace untouched — its cost is already billed (backoff stall,
    /// deadline stall) or was never incurred.
    pub(crate) fn note_llm_failure(
        trace: &mut Trace,
        module: ModuleKind,
        agent: usize,
        err: &LlmError,
    ) {
        if matches!(err, LlmError::Shed) {
            trace.record(module, Phase::Shed, agent, SHED_MARKER);
        }
    }

    /// Records an LLM response against the step counters and the
    /// per-purpose ledger.
    pub(crate) fn note_llm(&mut self, response: &LlmResponse) {
        self.counters.llm_calls += 1;
        self.counters.max_prompt_tokens =
            self.counters.max_prompt_tokens.max(response.prompt_tokens);
        self.by_purpose.record(
            &response.purpose.to_string(),
            response.latency,
            response.prompt_tokens,
            response.output_tokens,
        );
    }

    /// Inference options shared by every call an agent makes this episode.
    /// `team_size` models local-GPU co-tenancy: a multi-agent team serving
    /// its local model from one box contends for it.
    pub(crate) fn infer_opts_for(config: &AgentConfig, team_size: usize) -> InferenceOpts {
        InferenceOpts {
            quantization: config.opts.quantization,
            kv_reused_tokens: 0,
            multiple_choice: config.opts.multiple_choice,
            server_share: if config.planner.deployment.is_api() {
                1
            } else {
                team_size.max(1) as u32
            },
        }
    }

    // ----- closed-loop recovery -----

    /// Forces a fresh observation for agent `i`: the environment's
    /// perception layer is refreshed (a `FaultyEnv` wrapper thaws frozen
    /// frames and rebuilds a clean view, draw-free), then the agent
    /// re-senses and re-integrates, paying the encoder latency again as a
    /// [`Phase::Reobserve`] span.
    pub(crate) fn forced_reobserve(&mut self, i: usize) {
        self.env.refresh_perception(i);
        let obs = self.env.observe(i);
        let agent = &mut self.agents[i];
        let (percept, latency) = agent.sensing.sense(&obs);
        self.trace
            .record(ModuleKind::Sensing, Phase::Reobserve, i, latency);
        self.recovery_stats.reobserve_latency += latency;
        agent.memory.store(
            RecordKind::Observation,
            percept.text.clone(),
            percept.entities.clone(),
        );
        agent.map.integrate(&percept, self.step);
    }

    /// Retry budget exhausted: the agent escalates to a real
    /// diagnose-and-replan inference — one planning call reasoning about
    /// the repeated actuation failure — billed to the recovery ledger in
    /// tokens and dollars and voiding any multi-step plan budget.
    fn escalate_replan(&mut self, i: usize, subgoal: &Subgoal) {
        let difficulty = self.env.difficulty().scalar();
        let goal = self.env.goal_text();
        let team_size = self.agents.len();
        self.recovery_stats.replan_escalations += 1;
        let agent = &mut self.agents[i];
        let opts = Self::infer_opts_for(&agent.config, team_size);
        let prompt = format!(
            "{}\n[recovery] action {subgoal} keeps failing despite retries. \
             Diagnose the failure against the task goal ({goal}) and produce \
             a fresh plan that routes around the broken actuator or \
             misperceived object.",
            agent.preamble
        );
        let result = agent.planning.engine_mut().infer(
            LlmRequest::new(Purpose::Planning, &prompt, 40)
                .with_difficulty(difficulty)
                .with_opts(opts),
        );
        let stall = agent.planning.engine_mut().take_stall();
        let plan_tenant = agent.planning.engine().tenant();
        agent.plan_budget = 0;
        Self::note_stall(&mut self.trace, ModuleKind::Planning, i, stall);
        match result {
            Ok(response) => {
                self.recovery_stats.recovery_tokens +=
                    response.prompt_tokens + response.output_tokens;
                self.recovery_stats.recovery_cost_usd += response.cost_usd;
                self.serve_response(ModuleKind::Planning, i, plan_tenant, &response, false);
                self.note_llm(&response);
            }
            Err(err) => {
                // The escalation call itself faulted out: the agent replans
                // cold next step from whatever its memory holds.
                Self::note_llm_failure(&mut self.trace, ModuleKind::Planning, i, &err);
                self.degradations.degraded_planning += 1;
            }
        }
    }

    /// Sensing + memory-update phase for one agent. Returns the percept.
    pub(crate) fn sense_phase(&mut self, i: usize) -> Percept {
        // Stuck-detection watchdog: no environment progress over the
        // policy's window forces a re-observation before this step's
        // sensing, so planning runs against a fresh frame instead of a
        // stale or degraded one.
        if let Some(window) = self.recovery_policy.watchdog_window() {
            if self.step >= self.last_progress[i] + window {
                self.recovery_stats.watchdog_reobserves += 1;
                self.forced_reobserve(i);
                self.last_progress[i] = self.step;
            }
        }
        let obs = self.env.observe(i);
        let agent = &mut self.agents[i];
        let (percept, latency) = agent.sensing.sense(&obs);
        self.trace
            .record(ModuleKind::Sensing, Phase::Encoding, i, latency);
        agent.memory.begin_step(self.step);
        agent.memory.store(
            RecordKind::Observation,
            percept.text.clone(),
            percept.entities.clone(),
        );
        agent.map.integrate(&percept, self.step);
        percept
    }

    /// Executes a subgoal through the reflection loop and — when the
    /// recovery policy is closed-loop — the bounded action-retry ladder: a
    /// failed non-idle action is re-executed up to the policy's retry
    /// budget (each attempt marked with a [`Phase::ActRetry`] span and its
    /// real compute/actuation cost), and an exhausted budget escalates to a
    /// diagnose-and-replan inference billed to the recovery ledger.
    /// Resource contention (busy/waiting) is not an actuation fault and is
    /// never retried.
    pub(crate) fn execute_with_reflection(&mut self, i: usize, subgoal: &Subgoal) -> ExecOutcome {
        let mut outcome = self.reflect_and_execute(i, subgoal);
        let budget = self.recovery_policy.act_retries();
        // Retry only *unexplained* failures — the action was afforded yet
        // produced no observable effect at all (the silent-no-op signature).
        // A failure that comes back with a reason is deterministic: the
        // normal plan loop handles it, and re-issuing the same action would
        // burn latency at zero fault rates for nothing.
        if budget == 0 || !Self::looks_transient(&outcome) || subgoal.is_idle() {
            return outcome;
        }
        for _ in 0..budget {
            self.recovery_stats.act_retries += 1;
            self.trace.record(
                ModuleKind::Execution,
                Phase::ActRetry,
                i,
                ACT_RETRY_DISPATCH,
            );
            let retry = self.execute_phase(i, subgoal);
            self.recovery_stats.retry_latency += retry.total_time();
            outcome = retry;
            if outcome.completed || outcome.made_progress {
                self.recovery_stats.retries_recovered += 1;
                return outcome;
            }
            if !Self::looks_transient(&outcome) {
                // The retry surfaced a real precondition failure: the plan
                // itself is wrong, which is the planner's job, not ours.
                return outcome;
            }
        }
        // Repeated no-effect executions of an afforded action: something in
        // the world disagrees with the agent's model of it. Pay for a real
        // diagnostic replan instead of hammering the same actuator.
        self.escalate_replan(i, subgoal);
        outcome
    }

    /// Whether a failed outcome carries the no-observable-effect signature
    /// that closed-loop recovery treats as transient and worth retrying.
    fn looks_transient(outcome: &ExecOutcome) -> bool {
        !outcome.completed && !outcome.made_progress && outcome.note.starts_with("nothing happened")
    }

    /// Executes a subgoal and, on failure, runs the reflection loop: the
    /// reflector verifies the outcome (paper §II-A: "observes the state
    /// before and after"), and a caught *transient* error is retried within
    /// the same step — error correction "with minimal overhead" (Takeaway
    /// 2) — while a caught *category* error is blacklisted so planning
    /// cannot loop on it.
    fn reflect_and_execute(&mut self, i: usize, subgoal: &Subgoal) -> ExecOutcome {
        let team_size = self.agents.len();
        let mut outcome = self.execute_phase(i, subgoal);
        if outcome.completed || outcome.made_progress {
            return outcome;
        }
        if self.agents[i].reflection.is_none() {
            return outcome;
        }
        // Reflection cannot conjure a controller: with execution disabled,
        // diagnosing the failure does not make raw LLM motor commands work.
        let can_retry = self.agents[i].execution.mode() == crate::modules::ExecMode::Controller;
        let difficulty = self.env.difficulty().scalar();
        let step = self.step;
        let agent = &mut self.agents[i];
        let opts = Self::infer_opts_for(&agent.config, team_size);
        let reflection = agent.reflection.as_mut().expect("checked above");
        let refl_tenant = reflection.engine().tenant();
        let result = reflection.reflect(&agent.preamble, subgoal, &outcome, difficulty, opts);
        let stall = reflection.engine_mut().take_stall();
        Self::note_stall(&mut self.trace, ModuleKind::Reflection, i, stall);
        let verdict = match result {
            Ok(v) => v,
            Err(err) => {
                // Degrade: the failure stays undiagnosed this step — no
                // retry, no blacklist, no belief cleanup.
                Self::note_llm_failure(&mut self.trace, ModuleKind::Reflection, i, &err);
                self.degradations.degraded_reflection += 1;
                return outcome;
            }
        };
        self.serve_response(
            ModuleKind::Reflection,
            i,
            refl_tenant,
            &verdict.response,
            false,
        );
        if verdict.caught_error {
            if verdict.category_error {
                // Never retry a wrong-in-kind action; exclude it and let
                // the next step replan from corrected beliefs.
                let agent = &mut self.agents[i];
                agent.blacklist_subgoal(subgoal, step, 5);
                for entity in &verdict.stale_entities {
                    agent.memory.mark_stale(entity);
                }
                agent.last_failure = None;
                agent.failure_streak = 0;
            } else if can_retry {
                // Transient slip: retry once within the same step.
                outcome = self.execute_phase(i, subgoal);
            }
        }
        let response = verdict.response;
        self.note_llm(&response);
        outcome
    }

    /// Planning phase for one agent: knowledge-filter the menus, run the
    /// LLM (or consume the multi-step plan budget), return the decision.
    pub(crate) fn plan_phase(
        &mut self,
        i: usize,
        percept: &Percept,
        dialogue_text: &str,
    ) -> (Subgoal, bool) {
        let team_size = self.agents.len();
        let difficulty = self.env.difficulty().scalar();
        let goal = self.env.goal_text();
        let oracle_raw = self.env.oracle_subgoals(i);
        let candidates_raw = self.env.candidate_subgoals(i);
        let step = self.step;

        let agent = &mut self.agents[i];
        // Point-query knowledge filtering: `memory.knows` answers per
        // entity against the incremental last-seen index, so no per-step
        // `HashSet` of every known entity is materialized. An entity in
        // the current percept is known even if memory marked it stale —
        // fresh observation wins, as in `ModularAgent::knowledge`.
        let knows = |e: &str| agent.memory.knows(e) || percept.entities.iter().any(|p| p == e);
        let mut oracle = agent.filter_subgoals_with(oracle_raw, knows, step);
        let mut candidates = agent.filter_subgoals_with(candidates_raw, knows, step);
        // Re-plan around missing peers: a joint subgoal whose partner has
        // gone silent (heartbeat staleness) cannot succeed, so the planner
        // never considers it. No-op while no peer is suspected.
        if !agent.suspected.is_empty() {
            let partner_missing = |sg: &Subgoal| {
                matches!(sg, Subgoal::LiftTogether { partner, .. }
                    if agent.suspected.contains(partner))
            };
            oracle.retain(|sg| !partner_missing(sg));
            candidates.retain(|sg| !partner_missing(sg));
        }
        if candidates.is_empty() {
            candidates.push(Subgoal::Explore);
        }

        // Rec. 7: a still-valid high-level plan covers this step without a
        // new inference run.
        if agent.plan_budget > 0 && !oracle.is_empty() {
            agent.plan_budget -= 1;
            return (oracle[0].clone(), true);
        }

        // The map summary rides with the retrieved memory: spatial
        // knowledge is part of the context the planner reasons over. Both
        // render into the agent's reusable buffer — same bytes as the old
        // `format!("[map]\n{map_summary}\n{retrieval_text}")` path, no
        // per-step allocation.
        agent.memory_buf.clear();
        if agent.map.coverage() > 0 {
            agent.memory_buf.push_str("[map]\n");
            agent.map.write_summary(&mut agent.memory_buf, 6);
            agent.memory_buf.push('\n');
        }
        let retrieval = agent.memory.retrieve_write(&mut agent.memory_buf);
        self.trace
            .record(ModuleKind::Memory, Phase::Retrieval, i, retrieval.latency);

        // Unexplained failures (reflection absent or it missed the error)
        // leave the context contaminated: the planner reasons from beliefs
        // the world just contradicted, and the effect compounds while the
        // streak continues (paper: agents "stuck in loops of invalid
        // operations" without reflection).
        let failure_confusion = if agent.last_failure.is_some() {
            (0.2 * agent.failure_streak as f64).min(0.6)
        } else {
            0.0
        };
        // Practiced skills plan more reliably (action memory, §II-A): the
        // bonus keys on the kind of the oracle's preferred next step.
        let skill_bonus = oracle
            .first()
            .map(|sg| agent.memory.skill_bonus(sg.pattern()))
            .unwrap_or(0.0);
        let ctx = PlanContext {
            preamble: &agent.preamble,
            goal: &goal,
            percept_text: &percept.text,
            memory_text: &agent.memory_buf,
            dialogue_text,
            oracle,
            candidates,
            difficulty,
            opts: Self::infer_opts_for(&agent.config, team_size),
            quality_penalty: (retrieval.inconsistency_penalty + failure_confusion - skill_bonus)
                .max(0.0),
            repeat_bias: agent.last_failure.as_ref().map(|(sg, _)| sg.clone()),
            failure_streak: agent.failure_streak,
        };
        let planned = agent.planning.plan(&ctx);
        let stall = agent.planning.engine_mut().take_stall();
        Self::note_stall(&mut self.trace, ModuleKind::Planning, i, stall);
        let mut decision = match planned {
            Ok(d) => d,
            Err(err) => {
                // Degrade: fall back to the last successfully planned
                // subgoal (stale but coherent), else explore.
                Self::note_llm_failure(&mut self.trace, ModuleKind::Planning, i, &err);
                self.degradations.degraded_planning += 1;
                let fallback = agent.last_plan.clone().unwrap_or(Subgoal::Explore);
                return (fallback, false);
            }
        };
        let plan_tenant = agent.planning.engine().tenant();
        // The first planning response is an independent (cohort) request:
        // under an open window it is deferred and re-attributed at close,
        // in which case it must not re-enter the ledger below.
        let deferred = Self::serve_llm_response(
            &mut self.trace,
            &self.service,
            self.serving,
            &mut self.window_entries,
            ModuleKind::Planning,
            i,
            plan_tenant,
            &decision.response,
            true,
        );
        let mut responses = if deferred {
            Vec::new()
        } else {
            vec![decision.response.clone()]
        };

        if agent.config.separate_action_selection {
            let selected = agent.planning.select_action(&ctx, decision.clone());
            let stall = agent.planning.engine_mut().take_stall();
            Self::note_stall(&mut self.trace, ModuleKind::Planning, i, stall);
            match selected {
                Ok(d) => {
                    decision = d;
                    Self::serve_llm_response(
                        &mut self.trace,
                        &self.service,
                        self.serving,
                        &mut self.window_entries,
                        ModuleKind::Planning,
                        i,
                        plan_tenant,
                        &decision.response,
                        false,
                    );
                    responses.push(decision.response.clone());
                }
                Err(err) => {
                    // Degrade: skip the selection pass, keep the plan.
                    Self::note_llm_failure(&mut self.trace, ModuleKind::Planning, i, &err);
                    self.degradations.degraded_planning += 1;
                }
            }
        }
        // Pre-execution plan verification: reflective systems check every
        // plan before acting (MP5's patroller, DEPS's CLIP check); a wrong
        // plan that is recognized as wrong triggers one replanning pass.
        if let Some(reflection) = agent.reflection.as_mut() {
            let refl_tenant = reflection.engine().tenant();
            let verified = reflection.verify_plan(
                &agent.preamble,
                &decision.subgoal,
                !decision.followed_oracle,
                difficulty,
                Self::infer_opts_for(&agent.config, team_size),
            );
            let stall = reflection.engine_mut().take_stall();
            Self::note_stall(&mut self.trace, ModuleKind::Reflection, i, stall);
            match verified {
                Ok((caught, verify_response)) => {
                    Self::serve_llm_response(
                        &mut self.trace,
                        &self.service,
                        self.serving,
                        &mut self.window_entries,
                        ModuleKind::Reflection,
                        i,
                        refl_tenant,
                        &verify_response,
                        false,
                    );
                    responses.push(verify_response);
                    if caught {
                        let replanned = agent.planning.plan(&ctx);
                        let stall = agent.planning.engine_mut().take_stall();
                        Self::note_stall(&mut self.trace, ModuleKind::Planning, i, stall);
                        match replanned {
                            Ok(d) => {
                                decision = d;
                                Self::serve_llm_response(
                                    &mut self.trace,
                                    &self.service,
                                    self.serving,
                                    &mut self.window_entries,
                                    ModuleKind::Planning,
                                    i,
                                    plan_tenant,
                                    &decision.response,
                                    false,
                                );
                                responses.push(decision.response.clone());
                            }
                            Err(err) => {
                                // Degrade: act on the suspect plan rather
                                // than stall the step.
                                Self::note_llm_failure(
                                    &mut self.trace,
                                    ModuleKind::Planning,
                                    i,
                                    &err,
                                );
                                self.degradations.degraded_planning += 1;
                            }
                        }
                    }
                }
                Err(err) => {
                    // Degrade: skip pre-execution verification.
                    Self::note_llm_failure(&mut self.trace, ModuleKind::Reflection, i, &err);
                    self.degradations.degraded_reflection += 1;
                }
            }
        }

        if decision.followed_oracle && agent.config.opts.plan_horizon > 1 {
            agent.plan_budget = agent.config.opts.plan_horizon - 1;
        }
        let flaw = decision.response.flaw;
        let (mut subgoal, mut followed) = (decision.subgoal, decision.followed_oracle);
        // Guardrail: validate the final decision against what the
        // environment currently affords, repairing per policy. Under `Off`
        // a flawed decision still *lands* — materialized and executed
        // unguarded (the baseline the sweep measures) — but a clean
        // decision takes the zero-cost path: no affordance snapshot, no
        // extra draws, no spans.
        let policy = agent.config.repair_policy;
        let mut reground = false;
        if flaw.is_some() || !policy.is_off() {
            let affordances = self.env.affordances(i);
            let mut stats = RepairStats::default();
            let verdict = crate::guardrail::guard_decision(
                agent.planning.engine_mut(),
                policy,
                &subgoal,
                flaw,
                &affordances,
                &agent.preamble,
                &goal,
                difficulty,
                Self::infer_opts_for(&agent.config, team_size),
                &mut stats,
            );
            let stall = agent.planning.engine_mut().take_stall();
            Self::note_stall(&mut self.trace, ModuleKind::Planning, i, stall);
            if verdict.validate_latency != SimDuration::ZERO {
                self.trace.record(
                    ModuleKind::Planning,
                    Phase::Validate,
                    i,
                    verdict.validate_latency,
                );
            }
            if verdict.repair_latency != SimDuration::ZERO {
                self.trace.record(
                    ModuleKind::Planning,
                    Phase::Repair,
                    i,
                    verdict.repair_latency,
                );
            }
            // Guardrail re-prompts went back through the shared backend:
            // under a concurrency limit they pay real queue time too.
            if !self.serving.is_passthrough() && !verdict.responses.is_empty() {
                let queue = self.service.queue_solo(plan_tenant, self.trace.now());
                if !queue.is_zero() {
                    self.trace
                        .record(ModuleKind::Planning, Phase::Queue, i, queue);
                }
            }
            responses.extend(verdict.responses);
            if verdict.subgoal != subgoal {
                // The decision was rejected and repaired/skipped: whatever
                // multi-step plan it implied is void.
                followed = false;
                agent.plan_budget = 0;
            }
            subgoal = verdict.subgoal;
            // Re-ground on phantom: validation rejected an entity the
            // world does not afford. Under closed-loop recovery the agent
            // answers with a fresh observation instead of replanning
            // against the same degraded frame next step.
            reground = !self.recovery_policy.is_off() && stats.rejected_hallucinated > 0;
            self.repairs.merge(&stats);
        }
        agent.last_plan = Some(subgoal.clone());
        for response in &responses {
            self.note_llm(response);
        }
        if reground {
            self.recovery_stats.phantom_regrounds += 1;
            self.forced_reobserve(i);
        }
        (subgoal, followed)
    }

    /// Execution phase for one agent: drive the environment, bill compute
    /// and actuation, update failure state and memory.
    pub(crate) fn execute_phase(&mut self, i: usize, subgoal: &Subgoal) -> ExecOutcome {
        let team_size = self.agents.len();
        let difficulty = self.env.difficulty().scalar();
        let agent = &mut self.agents[i];
        let opts = Self::infer_opts_for(&agent.config, team_size);
        let report = agent
            .execution
            .execute(
                self.env.as_mut(),
                i,
                subgoal,
                agent.planning.engine_mut(),
                difficulty,
                opts,
            )
            .expect("micro-control prompt is never empty");
        let stall = agent.planning.engine_mut().take_stall();
        Self::note_stall(&mut self.trace, ModuleKind::Execution, i, stall);
        if report.degraded {
            // A micro-control call faulted out even after retries; the
            // primitive ran without that guidance.
            self.degradations.degraded_execution += 1;
        }
        for resp in &report.micro_responses {
            self.trace
                .record(ModuleKind::Planning, Phase::LlmInference, i, resp.latency);
        }
        let outcome = report.outcome;
        self.trace.record(
            ModuleKind::Execution,
            Phase::GeometricPlanning,
            i,
            outcome.compute,
        );
        self.trace.record(
            ModuleKind::Execution,
            Phase::Actuation,
            i,
            outcome.actuation,
        );

        let agent = &mut self.agents[i];
        agent
            .memory
            .store(RecordKind::Action, outcome.note.clone(), Vec::new());
        if outcome.completed {
            agent.memory.record_skill(subgoal.pattern());
        }
        if outcome.completed || outcome.made_progress {
            agent.last_failure = None;
            agent.failure_streak = 0;
            // The watchdog only counts steps with zero environment
            // progress; any success resets this agent's stuck clock.
            self.last_progress[i] = self.step;
        } else if outcome.note.contains("busy") || outcome.note.contains("waiting") {
            // Resource contention is not an error: the agent queued for a
            // busy station / held for a partner. No belief is wrong, so no
            // perseveration loop or confusion follows.
            agent.plan_budget = 0;
        } else {
            agent.plan_budget = 0; // a broken plan must be re-made
            agent.last_failure = Some((subgoal.clone(), outcome.clone()));
            agent.failure_streak += 1;
        }
        for resp in report.micro_responses {
            self.note_llm(&resp);
        }
        self.counters.progressed |= outcome.made_progress;
        outcome
    }

    /// Delivers a broadcast message to `recipients` (excluding the sender),
    /// counting utility (did any receiver learn something new?). Every
    /// per-recipient delivery runs through the channel fault layer: it can
    /// be dropped, blocked at a partition, duplicated, garbled (text
    /// unusable, entity payload lost), or held for late delivery; crashed
    /// recipients miss the message entirely. A `none()` channel performs
    /// zero draws and delivers exactly as before.
    pub(crate) fn deliver_message_to(
        &mut self,
        from: usize,
        text: &str,
        entities: &[String],
        recipients: &[usize],
    ) {
        self.messages.generated += 1;
        let n = self.agents.len();
        let step = self.step;
        let mut useful = false;
        for idx in 0..n {
            if idx == from || !recipients.contains(&idx) {
                continue;
            }
            if self.agent_faults.is_down(idx) {
                self.agent_faults.stats.missed_messages += 1;
                continue;
            }
            let fate = self.channel.fate(from, idx, n);
            let DeliveryFate::Deliver {
                copies,
                corrupt,
                delay,
            } = fate
            else {
                continue; // dropped or partition-blocked
            };
            let (text, entities) = if corrupt {
                (
                    format!("[garbled transmission from agent {from}]"),
                    Vec::new(),
                )
            } else {
                (text.to_owned(), entities.to_vec())
            };
            if delay > 0 {
                self.channel.delayed.push(DelayedMessage {
                    deliver_at: step + delay,
                    to: idx,
                    text,
                    entities,
                    copies,
                });
                continue;
            }
            let agent = &mut self.agents[idx];
            if !corrupt && !useful {
                // Point query per payload entity — no per-recipient clone
                // of the full known-entity set.
                useful = entities.iter().any(|e| !agent.memory.knows(e));
            }
            for _ in 0..copies {
                agent
                    .memory
                    .store(RecordKind::Dialogue, text.clone(), entities.clone());
                agent.inbox.push(text.clone());
            }
        }
        if useful {
            self.messages.useful += 1;
        }
    }
}
