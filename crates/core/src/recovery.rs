//! Closed-loop recovery: the agent-side answer to the embodied fault plane.
//!
//! [`FaultyEnv`] degrades what agents *perceive* and what their actions
//! *do*; this module defines the [`RecoveryPolicy`] that decides whether
//! agents fight back. With the policy `Off` (the default) faults land
//! unanswered: agents chase phantoms, replan against frozen frames, and
//! retry nothing. `Closed` wires three mechanisms into every orchestrator
//! path:
//!
//! * **stuck-detection watchdog** — no environment progress over a window
//!   of steps forces a fresh re-observation ([`Phase::Reobserve`]), paying
//!   the sensing latency again;
//! * **bounded action retry** — a failed non-idle action is retried up to
//!   `act_retries` times ([`Phase::ActRetry`]); exhaustion escalates to a
//!   real diagnose-and-replan inference through the serving stack (honest
//!   tokens and dollars, billed to [`RecoveryStats`]);
//! * **re-ground on phantom** — a guardrail rejection for a hallucinated
//!   entity triggers a fresh observation instead of a doomed reprompt
//!   against the same degraded frame.
//!
//! Everything is accounted in [`RecoveryStats`] so the sweep binaries can
//! report what recovery *costs*, not just what it wins.
//!
//! [`FaultyEnv`]: embodied_env::FaultyEnv
//! [`Phase::Reobserve`]: embodied_profiler::Phase::Reobserve
//! [`Phase::ActRetry`]: embodied_profiler::Phase::ActRetry
//! [`RecoveryStats`]: embodied_profiler::RecoveryStats

use embodied_profiler::{FromJson, JsonError, JsonValue, ToJson};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How agents respond to environment faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// No recovery: faults land unanswered (the baseline the embodied
    /// fault sweep compares against). The default — recovery is strictly
    /// opt-in, so fault-free runs are byte-identical to the pre-recovery
    /// system.
    #[default]
    Off,
    /// Closed-loop recovery: watchdog re-observation, bounded action
    /// retry with replan escalation, and re-ground-on-phantom.
    Closed {
        /// Steps without environment progress before the watchdog forces
        /// a re-observation. Must be >= 1.
        watchdog_window: usize,
        /// Retry budget per failed non-idle action before escalating to a
        /// diagnose-and-replan inference. Zero disables retries (the
        /// watchdog and re-grounding still run).
        act_retries: u32,
    },
}

impl RecoveryPolicy {
    /// The standard closed-loop configuration used by the sweeps.
    pub fn standard() -> Self {
        RecoveryPolicy::Closed {
            watchdog_window: 4,
            act_retries: 1,
        }
    }

    /// Whether recovery is disabled entirely.
    pub fn is_off(self) -> bool {
        matches!(self, RecoveryPolicy::Off)
    }

    /// The watchdog window, if the policy is closed-loop.
    pub fn watchdog_window(self) -> Option<usize> {
        match self {
            RecoveryPolicy::Off => None,
            RecoveryPolicy::Closed {
                watchdog_window, ..
            } => Some(watchdog_window),
        }
    }

    /// The per-action retry budget (zero when recovery is off).
    pub fn act_retries(self) -> u32 {
        match self {
            RecoveryPolicy::Off => 0,
            RecoveryPolicy::Closed { act_retries, .. } => act_retries,
        }
    }

    /// Validates the policy's parameters, returning it unchanged on
    /// success.
    pub fn validated(self) -> Result<Self, String> {
        if let RecoveryPolicy::Closed {
            watchdog_window, ..
        } = self
        {
            if watchdog_window == 0 {
                return Err("watchdog_window must be >= 1".into());
            }
        }
        Ok(self)
    }
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPolicy::Off => f.write_str("off"),
            RecoveryPolicy::Closed {
                watchdog_window,
                act_retries,
            } => write!(
                f,
                "closed(watchdog={watchdog_window}, retries={act_retries})"
            ),
        }
    }
}

impl ToJson for RecoveryPolicy {
    fn to_json(&self) -> JsonValue {
        match self {
            RecoveryPolicy::Off => JsonValue::Str("off".into()),
            RecoveryPolicy::Closed {
                watchdog_window,
                act_retries,
            } => JsonValue::Object(vec![
                (
                    "watchdog_window".into(),
                    JsonValue::Num(*watchdog_window as f64),
                ),
                ("act_retries".into(), JsonValue::Num(*act_retries as f64)),
            ]),
        }
    }
}

impl FromJson for RecoveryPolicy {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if let Some(s) = value.as_str() {
            return match s {
                "off" => Ok(RecoveryPolicy::Off),
                other => Err(JsonError::msg(format!(
                    "unknown recovery policy: {other:?}"
                ))),
            };
        }
        let watchdog_window = value.u64_field("watchdog_window").map_err(|_| {
            JsonError::msg(
                "RecoveryPolicy: expected \"off\" or \
                 {\"watchdog_window\": n, \"act_retries\": n}",
            )
        })? as usize;
        let act_retries = value.u64_field("act_retries")?;
        let act_retries = u32::try_from(act_retries).map_err(|_| {
            JsonError::msg(format!(
                "RecoveryPolicy: retry budget too large: {act_retries}"
            ))
        })?;
        RecoveryPolicy::Closed {
            watchdog_window,
            act_retries,
        }
        .validated()
        .map_err(|e| JsonError::msg(format!("RecoveryPolicy: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_draws_no_budget() {
        let p = RecoveryPolicy::default();
        assert!(p.is_off());
        assert_eq!(p.watchdog_window(), None);
        assert_eq!(p.act_retries(), 0);
        assert_eq!(p.to_string(), "off");
    }

    #[test]
    fn standard_policy_round_trips_exactly() {
        for p in [
            RecoveryPolicy::Off,
            RecoveryPolicy::standard(),
            RecoveryPolicy::Closed {
                watchdog_window: 9,
                act_retries: 0,
            },
        ] {
            let json = p.to_json();
            let back = RecoveryPolicy::from_json(&json).expect("round trip");
            assert_eq!(back, p);
            // And the JSON itself is stable across a second encode.
            assert_eq!(back.to_json().to_string(), json.to_string());
        }
    }

    #[test]
    fn validation_rejects_zero_watchdog_window() {
        let bad = RecoveryPolicy::Closed {
            watchdog_window: 0,
            act_retries: 2,
        };
        assert!(bad.validated().is_err());
        let json = JsonValue::Object(vec![
            ("watchdog_window".into(), JsonValue::Num(0.0)),
            ("act_retries".into(), JsonValue::Num(2.0)),
        ]);
        assert!(RecoveryPolicy::from_json(&json).is_err());
        assert!(RecoveryPolicy::from_json(&JsonValue::Str("sideways".into())).is_err());
    }
}
