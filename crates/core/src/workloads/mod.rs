//! The embodied agent workload suite (paper Table II): 14 systems spanning
//! the four paradigms, each specified by its module composition, models,
//! environment, and metadata.

mod registry;
mod taxonomy;

pub use registry::{find, registry};
pub use taxonomy::{taxonomy, ActionType, TaxonomyEntry, TaxonomyParadigm};

use crate::config::AgentConfig;
use crate::orchestrator::Paradigm;
use crate::system::EmbodiedSystem;
use embodied_env::{
    AlfWorldEnv, BoxVariant, BoxWorldEnv, CraftEnv, CuisineEnv, Environment, HouseholdEnv,
    KitchenEnv, ManipulationEnv, TaskDifficulty, TransportEnv,
};
use embodied_llm::InferenceService;
use serde::{Deserialize, Serialize};

/// Which task environment a workload runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvKind {
    /// TDW-MAT-style transport.
    Transport,
    /// C-WAH-style household.
    Household,
    /// CuisineWorld-style cooking.
    Cuisine,
    /// BoxNet/Warehouse/BoxLift family.
    BoxWorld(BoxVariant),
    /// Minecraft-style crafting.
    Craft,
    /// RoCoBench-style manipulation.
    Manipulation,
    /// Franka-Kitchen-style skills.
    Kitchen,
    /// ALFWorld-style hidden-object household tasks (DEPS's third dataset).
    AlfWorld,
}

impl EnvKind {
    /// Instantiates the environment.
    pub fn build(
        self,
        difficulty: TaskDifficulty,
        num_agents: usize,
        seed: u64,
    ) -> Box<dyn Environment> {
        match self {
            EnvKind::Transport => Box::new(TransportEnv::new(difficulty, num_agents, seed)),
            EnvKind::Household => Box::new(HouseholdEnv::new(difficulty, num_agents, seed)),
            EnvKind::Cuisine => Box::new(CuisineEnv::new(difficulty, num_agents, seed)),
            EnvKind::BoxWorld(variant) => {
                Box::new(BoxWorldEnv::new(variant, difficulty, num_agents, seed))
            }
            EnvKind::Craft => Box::new(CraftEnv::new(difficulty, num_agents, seed)),
            EnvKind::Manipulation => Box::new(ManipulationEnv::new(difficulty, num_agents, seed)),
            EnvKind::Kitchen => Box::new(KitchenEnv::new(difficulty, num_agents, seed)),
            EnvKind::AlfWorld => Box::new(AlfWorldEnv::new(difficulty, num_agents, seed)),
        }
    }
}

impl embodied_profiler::ToJson for EnvKind {
    fn to_json(&self) -> embodied_profiler::JsonValue {
        use embodied_profiler::JsonValue;
        match self {
            EnvKind::Transport => JsonValue::Str("transport".into()),
            EnvKind::Household => JsonValue::Str("household".into()),
            EnvKind::Cuisine => JsonValue::Str("cuisine".into()),
            EnvKind::BoxWorld(variant) => {
                JsonValue::Object(vec![("box_world".into(), variant.to_json())])
            }
            EnvKind::Craft => JsonValue::Str("craft".into()),
            EnvKind::Manipulation => JsonValue::Str("manipulation".into()),
            EnvKind::Kitchen => JsonValue::Str("kitchen".into()),
            EnvKind::AlfWorld => JsonValue::Str("alfworld".into()),
        }
    }
}

impl embodied_profiler::FromJson for EnvKind {
    fn from_json(
        value: &embodied_profiler::JsonValue,
    ) -> Result<Self, embodied_profiler::JsonError> {
        use embodied_profiler::JsonError;
        if let Some(s) = value.as_str() {
            return match s {
                "transport" => Ok(EnvKind::Transport),
                "household" => Ok(EnvKind::Household),
                "cuisine" => Ok(EnvKind::Cuisine),
                "craft" => Ok(EnvKind::Craft),
                "manipulation" => Ok(EnvKind::Manipulation),
                "kitchen" => Ok(EnvKind::Kitchen),
                "alfworld" => Ok(EnvKind::AlfWorld),
                other => Err(JsonError::msg(format!("unknown environment: {other:?}"))),
            };
        }
        let variant = value.field("box_world").map_err(|_| {
            JsonError::msg("EnvKind: expected an environment name or {\"box_world\": variant}")
        })?;
        Ok(EnvKind::BoxWorld(BoxVariant::from_json(variant)?))
    }
}

/// One suite member: everything needed to instantiate and document it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// System name, e.g. `"CoELA"`.
    pub name: &'static str,
    /// Cooperation paradigm.
    pub paradigm: Paradigm,
    /// Task environment.
    pub env: EnvKind,
    /// Default team size.
    pub default_agents: usize,
    /// Module composition and models.
    pub config: AgentConfig,
    /// Application description (Table II column).
    pub application: &'static str,
    /// Datasets / tasks description (Table II column).
    pub datasets: &'static str,
    /// Execution-module label (Table II column).
    pub exec_label: &'static str,
}

impl WorkloadSpec {
    /// Whether this is a multi-agent system.
    pub fn is_multi_agent(&self) -> bool {
        !matches!(self.paradigm, Paradigm::SingleModular)
    }

    /// Builds the environment at the workload's defaults.
    pub fn build_env(
        &self,
        difficulty: TaskDifficulty,
        num_agents: usize,
        seed: u64,
    ) -> Box<dyn Environment> {
        let agents = if self.is_multi_agent() {
            num_agents.max(1)
        } else {
            1
        };
        self.env.build(difficulty, agents, seed)
    }

    /// Assembles a ready-to-run system for this workload. A non-`none()`
    /// embodied fault profile wraps the environment in
    /// [`embodied_env::FaultyEnv`]; the default leaves the bare environment
    /// unwrapped, so fault-free runs are byte-identical to the
    /// pre-fault-plane system.
    pub fn build_system(
        &self,
        config: &AgentConfig,
        difficulty: TaskDifficulty,
        num_agents: usize,
        seed: u64,
    ) -> EmbodiedSystem {
        let mut env = self.build_env(difficulty, num_agents, seed);
        if !config.env_fault_profile.is_none() {
            env = Box::new(embodied_env::FaultyEnv::new(
                env,
                config.env_fault_profile,
                seed,
            ));
        }
        EmbodiedSystem::new(self.name, env, config, self.paradigm, seed)
    }

    /// [`Self::build_system`], but registering the episode's engines as
    /// tenants of an existing shared service under fleet scope `scope` —
    /// the fleet-runner path, where N concurrent episodes contend for one
    /// serving stack on a single virtual clock.
    pub(crate) fn build_system_in_fleet(
        &self,
        config: &AgentConfig,
        difficulty: TaskDifficulty,
        num_agents: usize,
        seed: u64,
        service: &InferenceService,
        scope: usize,
    ) -> EmbodiedSystem {
        let mut env = self.build_env(difficulty, num_agents, seed);
        if !config.env_fault_profile.is_none() {
            env = Box::new(embodied_env::FaultyEnv::new(
                env,
                config.env_fault_profile,
                seed,
            ));
        }
        EmbodiedSystem::with_shared_service(
            self.name,
            env,
            config,
            self.paradigm,
            seed,
            service.clone(),
            Some(scope),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_fourteen_members() {
        assert_eq!(registry().len(), 14);
    }

    #[test]
    fn registry_composition_matches_paper() {
        let specs = registry();
        let singles = specs
            .iter()
            .filter(|s| s.paradigm == Paradigm::SingleModular)
            .count();
        let centralized = specs
            .iter()
            .filter(|s| s.paradigm == Paradigm::Centralized)
            .count();
        let decentralized = specs
            .iter()
            .filter(|s| matches!(s.paradigm, Paradigm::Decentralized | Paradigm::Hybrid))
            .count();
        assert_eq!(singles, 5, "five single-agent systems");
        assert_eq!(centralized, 4, "four centralized systems");
        assert_eq!(decentralized, 5, "five decentralized systems (incl. HMAS)");
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in registry() {
            assert!(seen.insert(s.name), "duplicate workload {}", s.name);
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("coela").is_some());
        assert!(find("CoELA").is_some());
        assert!(find("JARVIS-1").is_some());
        assert!(find("NotASystem").is_none());
    }

    #[test]
    fn single_agent_envs_force_one_agent() {
        let jarvis = find("JARVIS-1").unwrap();
        let env = jarvis.build_env(TaskDifficulty::Easy, 5, 0);
        assert_eq!(env.num_agents(), 1);
    }

    #[test]
    fn multi_agent_envs_scale() {
        let coela = find("CoELA").unwrap();
        let env = coela.build_env(TaskDifficulty::Easy, 4, 0);
        assert_eq!(env.num_agents(), 4);
    }

    #[test]
    fn module_composition_respects_table2() {
        // CoELA: sensing+plan+comm+memory, no reflection, action selection.
        let coela = find("CoELA").unwrap();
        assert!(coela.config.communicator.is_some());
        assert!(coela.config.reflector.is_none());
        assert!(coela.config.separate_action_selection);
        // EmbodiedGPT: no comm, no memory, no reflection.
        let egpt = find("EmbodiedGPT").unwrap();
        assert!(egpt.config.communicator.is_none());
        assert!(egpt.config.reflector.is_none());
        assert!(!egpt.config.toggles.memory);
        // JARVIS-1: memory + reflection, no comm.
        let jarvis = find("JARVIS-1").unwrap();
        assert!(jarvis.config.reflector.is_some());
        assert!(jarvis.config.toggles.memory);
        assert!(jarvis.config.communicator.is_none());
        // HMAS is the hybrid paradigm.
        assert_eq!(find("HMAS").unwrap().paradigm, Paradigm::Hybrid);
    }
}
