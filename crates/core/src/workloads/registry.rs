//! Definitions of the 14 suite members, mirroring the module/model columns
//! of the paper's Table II.

use super::{EnvKind, WorkloadSpec};
use crate::config::{AgentConfig, MemoryCapacity, ModuleToggles, Optimizations};
use crate::orchestrator::Paradigm;
use embodied_env::BoxVariant;
use embodied_llm::{Deployment, EncoderProfile, ModelProfile};

/// A fast, shallow verifier standing in for DEPS's CLIP-based reflection:
/// an encoder-scored check, not a full LLM.
fn clip_verifier() -> ModelProfile {
    ModelProfile {
        name: "CLIP verifier".into(),
        params_b: 0.4,
        deployment: Deployment::Local {
            prefill_tok_per_s: 20_000.0,
            decode_tok_per_s: 4_000.0,
        },
        context_window: 2_048,
        base_capability: 0.68,
        verbosity: 0.1,
    }
}

fn base_config(
    planner: ModelProfile,
    communicator: Option<ModelProfile>,
    reflector: Option<ModelProfile>,
    encoder: Option<EncoderProfile>,
    memory: bool,
) -> AgentConfig {
    AgentConfig {
        planner,
        communicator,
        reflector,
        encoder,
        separate_action_selection: false,
        exec_compute_scale: 1.0,
        trajectory_planner: embodied_env::TrajectoryPlanner::default(),
        actuator_reliability: 0.97,
        grasp_pipeline: false,
        central_feedback_extraction: false,
        toggles: ModuleToggles {
            communication: true,
            memory,
            reflection: true,
            execution: true,
        },
        memory_capacity: MemoryCapacity::default(),
        retrieval_mode: crate::modules::RetrievalMode::default(),
        opts: Optimizations::default(),
        fault_profile: embodied_llm::FaultProfile::none(),
        retry_policy: embodied_llm::RetryPolicy::standard(),
        agent_fault_profile: crate::faults::AgentFaultProfile::none(),
        channel_profile: crate::faults::ChannelProfile::none(),
        semantic_fault_profile: embodied_llm::SemanticFaultProfile::none(),
        repair_policy: crate::guardrail::RepairPolicy::Off,
        serving: embodied_llm::ServingConfig::disabled(),
        env_fault_profile: embodied_env::EnvFaultProfile::none(),
        recovery_policy: crate::recovery::RecoveryPolicy::Off,
    }
}

/// The full 14-system workload suite (Table II).
pub fn registry() -> Vec<WorkloadSpec> {
    let gpt4 = ModelProfile::gpt4_api;
    vec![
        // ---- single-agent, modularized ----
        WorkloadSpec {
            name: "EmbodiedGPT",
            paradigm: Paradigm::SingleModular,
            env: EnvKind::Kitchen,
            default_agents: 1,
            config: base_config(
                ModelProfile::llama_7b_embodied(),
                None,
                None,
                Some(EncoderProfile::vit()),
                false,
            ),
            application: "Embodied planning, visual captioning, VQA",
            datasets: "Franka Kitchen, Meta-World, VirtualHome",
            exec_label: "MLP",
        },
        WorkloadSpec {
            name: "JARVIS-1",
            paradigm: Paradigm::SingleModular,
            env: EnvKind::Craft,
            default_agents: 1,
            config: base_config(
                gpt4(),
                None,
                Some(ModelProfile::llama_13b()),
                Some(EncoderProfile::mineclip()),
                true,
            ),
            application: "Embodied planning (e.g. obtain diamond pickaxe)",
            datasets: "Minecraft",
            exec_label: "Action list",
        },
        WorkloadSpec {
            name: "DaDu-E",
            paradigm: Paradigm::SingleModular,
            env: EnvKind::Transport,
            default_agents: 1,
            config: AgentConfig {
                grasp_pipeline: true,
                ..base_config(
                    ModelProfile::llama_8b_dadu(),
                    None,
                    Some(ModelProfile::llava_8b()),
                    Some(EncoderProfile::pointcloud()),
                    true,
                )
            },
            application: "Object transport, autonomous decision-making",
            datasets: "Self-designed four-level tasks",
            exec_label: "AnyGrasp",
        },
        WorkloadSpec {
            name: "MP5",
            paradigm: Paradigm::SingleModular,
            env: EnvKind::Craft,
            default_agents: 1,
            config: base_config(
                gpt4(),
                None,
                Some(gpt4()),
                Some(EncoderProfile::mineclip()),
                false,
            ),
            application: "Object transport, situation-aware long-term planning",
            datasets: "Minecraft",
            exec_label: "MineDojo",
        },
        WorkloadSpec {
            name: "DEPS",
            paradigm: Paradigm::SingleModular,
            env: EnvKind::Craft,
            default_agents: 1,
            config: base_config(
                gpt4(),
                None,
                Some(clip_verifier()),
                Some(EncoderProfile::symbolic()),
                false,
            ),
            application: "Embodied planning (e.g. obtain diamond pickaxe)",
            datasets: "Minecraft, MineRL, ALFWorld",
            exec_label: "MineDojo",
        },
        // ---- multi-agent, centralized ----
        WorkloadSpec {
            name: "MindAgent",
            paradigm: Paradigm::Centralized,
            env: EnvKind::Cuisine,
            default_agents: 2,
            config: base_config(gpt4(), Some(gpt4()), None, None, true),
            application: "Collaborative planning, gaming, housework",
            datasets: "CuisineWorld, Minecraft",
            exec_label: "Action list",
        },
        WorkloadSpec {
            name: "OLA",
            paradigm: Paradigm::Centralized,
            env: EnvKind::Household,
            default_agents: 2,
            config: base_config(gpt4(), Some(gpt4()), Some(gpt4()), None, true),
            application: "Collaborative planning, object transport",
            datasets: "VirtualHome, C-WAH",
            exec_label: "Action list",
        },
        WorkloadSpec {
            name: "COHERENT",
            paradigm: Paradigm::Centralized,
            env: EnvKind::Manipulation,
            default_agents: 3,
            config: AgentConfig {
                central_feedback_extraction: true,
                ..base_config(
                    gpt4(),
                    Some(gpt4()),
                    Some(gpt4()),
                    Some(EncoderProfile::dino()),
                    true,
                )
            },
            application: "Collaborative planning, robot arm manipulation",
            datasets: "BEHAVIOR-1K",
            exec_label: "RRT/A-star",
        },
        WorkloadSpec {
            name: "CMAS",
            paradigm: Paradigm::Centralized,
            env: EnvKind::BoxWorld(BoxVariant::BoxNet1),
            default_agents: 3,
            config: base_config(
                gpt4(),
                Some(gpt4()),
                None,
                Some(EncoderProfile::vild()),
                true,
            ),
            application: "Collaborative planning, manipulator, object transport",
            datasets: "BoxNet1, BoxNet2, WareHouse, BoxLift",
            exec_label: "Action list",
        },
        // ---- multi-agent, decentralized (incl. hybrid HMAS) ----
        WorkloadSpec {
            name: "CoELA",
            paradigm: Paradigm::Decentralized,
            env: EnvKind::Transport,
            default_agents: 2,
            config: AgentConfig {
                separate_action_selection: true,
                ..base_config(
                    gpt4(),
                    Some(gpt4()),
                    None,
                    Some(EncoderProfile::mask_rcnn()),
                    true,
                )
            },
            application: "Collaborative object transporting, housework",
            datasets: "TDW-MAT, C-WAH",
            exec_label: "A-star",
        },
        WorkloadSpec {
            name: "COMBO",
            paradigm: Paradigm::Decentralized,
            env: EnvKind::Cuisine,
            default_agents: 2,
            config: base_config(
                ModelProfile::llava_7b(),
                Some(ModelProfile::llava_7b()),
                None,
                Some(EncoderProfile::diffusion_world_model()),
                true,
            ),
            application: "Collaborative gaming, housework",
            datasets: "TDW-Game, TDW-Cook",
            exec_label: "A-star",
        },
        WorkloadSpec {
            name: "RoCo",
            paradigm: Paradigm::Decentralized,
            env: EnvKind::Manipulation,
            default_agents: 2,
            config: AgentConfig {
                exec_compute_scale: 2.0,
                ..base_config(
                    gpt4(),
                    Some(gpt4()),
                    Some(gpt4()),
                    Some(EncoderProfile::owl_vit()),
                    true,
                )
            },
            application: "Robot arm motion planning, manipulation",
            datasets: "RoCoBench",
            exec_label: "RRT",
        },
        WorkloadSpec {
            name: "DMAS",
            paradigm: Paradigm::Decentralized,
            env: EnvKind::BoxWorld(BoxVariant::BoxNet2),
            default_agents: 3,
            config: base_config(
                gpt4(),
                Some(gpt4()),
                None,
                Some(EncoderProfile::vild()),
                true,
            ),
            application: "Collaborative planning, manipulator, object transport",
            datasets: "BoxNet1, BoxNet2, WareHouse, BoxLift",
            exec_label: "Action list",
        },
        WorkloadSpec {
            name: "HMAS",
            paradigm: Paradigm::Hybrid,
            env: EnvKind::BoxWorld(BoxVariant::BoxLift),
            default_agents: 3,
            config: base_config(
                gpt4(),
                Some(gpt4()),
                Some(gpt4()),
                Some(EncoderProfile::vild()),
                true,
            ),
            application: "Collaborative planning, manipulator, object transport",
            datasets: "BoxNet1, BoxNet2, WareHouse, BoxLift",
            exec_label: "Action list",
        },
    ]
}

/// Looks up a workload by (case-insensitive) name.
pub fn find(name: &str) -> Option<WorkloadSpec> {
    registry()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_verifier_is_fast_and_shallow() {
        use embodied_profiler::SimDuration;
        let p = clip_verifier();
        let lat = embodied_llm::inference_latency(&p, 500, 10, Default::default());
        assert!(lat < SimDuration::from_millis(500));
        assert!(p.base_capability < ModelProfile::gpt4_api().base_capability);
    }

    #[test]
    fn local_model_workloads_have_zero_api_cost_planners() {
        for name in ["EmbodiedGPT", "DaDu-E", "COMBO"] {
            let spec = find(name).unwrap();
            assert!(
                !spec.config.planner.deployment.is_api(),
                "{name} should plan locally"
            );
        }
    }

    #[test]
    fn gpt4_workloads_use_the_api() {
        for name in ["JARVIS-1", "CoELA", "MindAgent", "RoCo"] {
            let spec = find(name).unwrap();
            assert!(spec.config.planner.deployment.is_api());
        }
    }

    #[test]
    fn exec_labels_match_table2() {
        assert_eq!(find("RoCo").unwrap().exec_label, "RRT");
        assert_eq!(find("EmbodiedGPT").unwrap().exec_label, "MLP");
        assert_eq!(find("DaDu-E").unwrap().exec_label, "AnyGrasp");
        assert_eq!(find("CoELA").unwrap().exec_label, "A-star");
    }
}
