//! The full Table I taxonomy: every system the paper categorizes (not just
//! the 14 benchmarked suite members), with paradigm, module composition and
//! embodied action type.

use serde::{Deserialize, Serialize};

/// Paper Table I's four system categories (the end-to-end category is
/// taxonomized but not benchmarked, exactly as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaxonomyParadigm {
    /// Single-agent, modularized pipeline.
    SingleModularized,
    /// Single-agent, end-to-end model.
    SingleEndToEnd,
    /// Multi-agent, centralized planner.
    MultiCentralized,
    /// Multi-agent, decentralized dialogue.
    MultiDecentralized,
}

impl std::fmt::Display for TaxonomyParadigm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TaxonomyParadigm::SingleModularized => "single-agent / modularized",
            TaxonomyParadigm::SingleEndToEnd => "single-agent / end-to-end",
            TaxonomyParadigm::MultiCentralized => "multi-agent / centralized",
            TaxonomyParadigm::MultiDecentralized => "multi-agent / decentralized",
        };
        f.write_str(s)
    }
}

/// Action type of the embodied system (Table I footnote: V = virtual action,
/// T = tool usage, E = physical action).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionType {
    /// Virtual actions in a simulator.
    Virtual,
    /// Tool usage (device control, programming).
    Tool,
    /// Physical robot actions.
    Physical,
}

impl ActionType {
    /// The paper's single-letter code.
    pub fn code(self) -> char {
        match self {
            ActionType::Virtual => 'V',
            ActionType::Tool => 'T',
            ActionType::Physical => 'E',
        }
    }
}

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaxonomyEntry {
    /// System name.
    pub name: &'static str,
    /// Category.
    pub paradigm: TaxonomyParadigm,
    /// Module composition: sense, plan, comm, mem, refl, exec.
    pub modules: [bool; 6],
    /// Embodied application label, e.g. `"Simulation"`.
    pub embodied_type: &'static str,
    /// Action type code.
    pub action: ActionType,
    /// Whether the system is one of the 14 benchmarked suite members.
    pub in_suite: bool,
}

macro_rules! row {
    ($name:literal, $paradigm:ident, [$s:literal,$p:literal,$c:literal,$m:literal,$r:literal,$e:literal], $ty:literal, $act:ident, $suite:literal) => {
        TaxonomyEntry {
            name: $name,
            paradigm: TaxonomyParadigm::$paradigm,
            modules: [$s == 1, $p == 1, $c == 1, $m == 1, $r == 1, $e == 1],
            embodied_type: $ty,
            action: ActionType::$act,
            in_suite: $suite == 1,
        }
    };
}

/// Every system the paper's Table I categorizes.
pub fn taxonomy() -> Vec<TaxonomyEntry> {
    vec![
        // ---- single-agent, modularized ----
        row!(
            "Mobile-Agent",
            SingleModularized,
            [1, 1, 0, 0, 1, 1],
            "Device Control",
            Tool,
            0
        ),
        row!(
            "AppAgent",
            SingleModularized,
            [1, 1, 0, 0, 0, 1],
            "Device Control",
            Tool,
            0
        ),
        row!(
            "PDDL",
            SingleModularized,
            [0, 1, 0, 0, 1, 0],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "RoboGPT",
            SingleModularized,
            [1, 1, 0, 0, 0, 1],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "VOYAGER",
            SingleModularized,
            [0, 1, 0, 1, 1, 1],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "MP5",
            SingleModularized,
            [1, 1, 0, 0, 1, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "RILA",
            SingleModularized,
            [1, 1, 0, 1, 1, 1],
            "Navigation",
            Virtual,
            0
        ),
        row!(
            "CRADLE",
            SingleModularized,
            [1, 1, 0, 1, 1, 1],
            "Device Control",
            Tool,
            0
        ),
        row!(
            "STEVE",
            SingleModularized,
            [1, 1, 0, 0, 0, 1],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "DEPS",
            SingleModularized,
            [1, 1, 0, 0, 1, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "JARVIS-1",
            SingleModularized,
            [1, 1, 0, 1, 1, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "FILM",
            SingleModularized,
            [1, 1, 0, 0, 0, 1],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "LLM-Planner",
            SingleModularized,
            [0, 1, 0, 0, 1, 1],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "EmbodiedGPT",
            SingleModularized,
            [1, 1, 0, 0, 0, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "Dadu-E",
            SingleModularized,
            [1, 1, 0, 1, 1, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "MINEDOJO",
            SingleModularized,
            [1, 1, 0, 1, 0, 1],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "Luban",
            SingleModularized,
            [1, 1, 0, 1, 1, 1],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "MetaGPT",
            SingleModularized,
            [0, 1, 1, 1, 1, 1],
            "Programming",
            Tool,
            0
        ),
        row!(
            "Mobile-Agent-V2",
            SingleModularized,
            [1, 1, 0, 1, 1, 1],
            "Device Control",
            Tool,
            0
        ),
        // ---- single-agent, end-to-end ----
        row!(
            "RT-2",
            SingleEndToEnd,
            [1, 1, 0, 0, 0, 1],
            "Robot Control",
            Physical,
            0
        ),
        row!(
            "RoboVLMs",
            SingleEndToEnd,
            [1, 1, 0, 0, 0, 1],
            "Robot Control",
            Physical,
            0
        ),
        row!(
            "GAIA-1",
            SingleEndToEnd,
            [1, 1, 0, 0, 0, 1],
            "Autonomous Driving",
            Physical,
            0
        ),
        row!(
            "3D-VLA",
            SingleEndToEnd,
            [1, 1, 0, 0, 0, 1],
            "Robot Control",
            Physical,
            0
        ),
        row!(
            "Octo",
            SingleEndToEnd,
            [1, 1, 0, 0, 0, 1],
            "Robot Control",
            Physical,
            0
        ),
        row!(
            "Diffusion Policy",
            SingleEndToEnd,
            [1, 1, 0, 0, 0, 1],
            "Robot Control",
            Physical,
            0
        ),
        // ---- multi-agent, centralized ----
        row!(
            "LLaMAC",
            MultiCentralized,
            [0, 1, 1, 1, 0, 1],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "MindAgent",
            MultiCentralized,
            [0, 1, 1, 1, 0, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "OLA",
            MultiCentralized,
            [0, 1, 1, 1, 1, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "ALGPT",
            MultiCentralized,
            [1, 1, 1, 1, 0, 1],
            "Navigation",
            Virtual,
            0
        ),
        row!(
            "CMAS",
            MultiCentralized,
            [1, 1, 1, 1, 0, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "ReAd",
            MultiCentralized,
            [0, 1, 1, 0, 1, 1],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "Co-NavGPT",
            MultiCentralized,
            [1, 1, 1, 0, 0, 1],
            "Navigation",
            Virtual,
            0
        ),
        row!(
            "COHERENT",
            MultiCentralized,
            [1, 1, 1, 1, 1, 1],
            "Simulation",
            Virtual,
            1
        ),
        // ---- multi-agent, decentralized ----
        row!(
            "DMAS",
            MultiDecentralized,
            [1, 1, 1, 1, 0, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "HMAS",
            MultiDecentralized,
            [1, 1, 1, 1, 1, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "AGA",
            MultiDecentralized,
            [1, 1, 1, 1, 1, 1],
            "Simulation",
            Virtual,
            0
        ),
        row!(
            "CoELA",
            MultiDecentralized,
            [1, 1, 1, 1, 0, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "FMA",
            MultiDecentralized,
            [0, 1, 1, 1, 1, 1],
            "Programming",
            Tool,
            0
        ),
        row!(
            "COMBO",
            MultiDecentralized,
            [1, 1, 1, 1, 0, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "RoCo",
            MultiDecentralized,
            [1, 1, 1, 1, 1, 1],
            "Simulation",
            Virtual,
            1
        ),
        row!(
            "AgentVerse",
            MultiDecentralized,
            [0, 1, 1, 0, 0, 1],
            "Simulation",
            Virtual,
            0
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_covers_all_four_categories() {
        let t = taxonomy();
        for paradigm in [
            TaxonomyParadigm::SingleModularized,
            TaxonomyParadigm::SingleEndToEnd,
            TaxonomyParadigm::MultiCentralized,
            TaxonomyParadigm::MultiDecentralized,
        ] {
            assert!(
                t.iter().filter(|e| e.paradigm == paradigm).count() >= 6,
                "{paradigm} under-populated"
            );
        }
        assert!(t.len() >= 35, "Table I lists ~35+ systems, got {}", t.len());
    }

    #[test]
    fn suite_members_appear_in_taxonomy() {
        let t = taxonomy();
        for spec in super::super::registry() {
            // Registry "DaDu-E" appears as "Dadu-E" in Table I.
            let found = t
                .iter()
                .any(|e| e.in_suite && e.name.eq_ignore_ascii_case(spec.name));
            assert!(found, "{} missing from taxonomy", spec.name);
        }
        assert_eq!(t.iter().filter(|e| e.in_suite).count(), 14);
    }

    #[test]
    fn every_system_plans_and_most_execute() {
        let t = taxonomy();
        assert!(t.iter().all(|e| e.modules[1]), "planning is universal");
        let executing = t.iter().filter(|e| e.modules[5]).count();
        assert!(executing as f64 > t.len() as f64 * 0.9);
    }

    #[test]
    fn end_to_end_systems_are_physical_and_unbenchmarked() {
        for e in taxonomy()
            .iter()
            .filter(|e| e.paradigm == TaxonomyParadigm::SingleEndToEnd)
        {
            assert_eq!(e.action, ActionType::Physical);
            assert!(!e.in_suite, "{} is not in the measured suite", e.name);
        }
    }

    #[test]
    fn action_codes() {
        assert_eq!(ActionType::Virtual.code(), 'V');
        assert_eq!(ActionType::Tool.code(), 'T');
        assert_eq!(ActionType::Physical.code(), 'E');
    }
}
