//! Guardrail pipeline: validate every LLM plan decision against the
//! environment's affordances before actuation, and repair what fails.
//!
//! The semantic fault plane (`embodied-llm`'s [`SemanticFaultInjector`])
//! stamps a [`SemanticFlaw`] marker on corrupted responses; this module is
//! where the flaw *materializes* into what the planning layer would have
//! parsed — an unparseable completion, a hallucinated entity, a
//! syntactically valid but environment-invalid action, or a truncated
//! decision — and where the [`PlanValidator`] catches it against the
//! [`AffordanceSet`] the environment exposes.
//!
//! What happens next is the [`RepairPolicy`]:
//!
//! * **Off** (default) — no validation at all: corrupted decisions execute
//!   unguarded and fail in the environment. Byte-identical to the
//!   pre-guardrail system when the semantic profile is `none()`.
//! * **Reprompt** — bounded re-prompt with structured error feedback,
//!   paying real tokens and latency through the planning engine.
//! * **Constrain** — snap the rejected decision to the nearest afforded
//!   action (no extra tokens).
//! * **Skip** — drop the step entirely (graceful degradation).
//!
//! Every validation/repair is accounted in [`RepairStats`] and recorded as
//! [`Phase::Validate`]/[`Phase::Repair`] trace spans by the orchestrators.
//!
//! [`SemanticFaultInjector`]: embodied_llm::SemanticFaultInjector
//! [`Phase::Validate`]: embodied_profiler::Phase::Validate
//! [`Phase::Repair`]: embodied_profiler::Phase::Repair

use crate::prompt::PromptBuilder;
use embodied_env::{AffordanceSet, Subgoal};
use embodied_llm::{
    floor_char, EngineHandle, InferenceOpts, LlmRequest, LlmResponse, Purpose, SemanticFaultKind,
    SemanticFlaw,
};
use embodied_profiler::{FromJson, JsonError, JsonValue, RepairStats, SimDuration, ToJson};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulated wall-clock cost of one schema/affordance validation pass —
/// a local check, orders of magnitude below an inference run.
pub const VALIDATE_COST: SimDuration = SimDuration::from_millis(2);

/// Longest slice of an offending entity name quoted back to the model in
/// error feedback (hallucinated names can be arbitrarily long).
const FEEDBACK_SPAN: usize = 18;

/// Hallucinated entity names the materializer draws from. Deliberately
/// multi-word and multi-byte: validator feedback slices them, which is
/// exactly where naive byte indexing would panic on a char boundary.
const PHANTOM_ENTITIES: [&str; 4] = [
    "café au lait table",
    "naïve jalapeño crate",
    "über-heavy boxen № 7",
    "żółty kredens łazienkowy",
];

/// How the guardrail responds to a rejected plan decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RepairPolicy {
    /// No validation: corrupted decisions execute unguarded (the baseline
    /// the guardrail sweep compares against). The default — the guardrail
    /// is strictly opt-in.
    #[default]
    Off,
    /// Re-prompt the planner with structured error feedback, up to
    /// `max_attempts` times, paying real tokens/latency per attempt. Falls
    /// through to the unguarded action when the budget is exhausted (the
    /// *residual* invalid-action rate).
    Reprompt {
        /// Re-prompt budget per rejected decision.
        max_attempts: u32,
    },
    /// Replace the rejected decision with the nearest afforded action
    /// (deterministic, zero extra tokens).
    Constrain,
    /// Skip the step entirely: the agent waits this step out.
    Skip,
}

impl RepairPolicy {
    /// Whether the guardrail is disabled entirely.
    pub fn is_off(self) -> bool {
        matches!(self, RepairPolicy::Off)
    }
}

impl fmt::Display for RepairPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairPolicy::Off => f.write_str("off"),
            RepairPolicy::Reprompt { max_attempts } => write!(f, "reprompt({max_attempts})"),
            RepairPolicy::Constrain => f.write_str("constrain"),
            RepairPolicy::Skip => f.write_str("skip"),
        }
    }
}

impl ToJson for RepairPolicy {
    fn to_json(&self) -> JsonValue {
        match self {
            RepairPolicy::Off => JsonValue::Str("off".into()),
            RepairPolicy::Reprompt { max_attempts } => JsonValue::Object(vec![(
                "reprompt".into(),
                JsonValue::Num(*max_attempts as f64),
            )]),
            RepairPolicy::Constrain => JsonValue::Str("constrain".into()),
            RepairPolicy::Skip => JsonValue::Str("skip".into()),
        }
    }
}

impl FromJson for RepairPolicy {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        if let Some(s) = value.as_str() {
            return match s {
                "off" => Ok(RepairPolicy::Off),
                "constrain" => Ok(RepairPolicy::Constrain),
                "skip" => Ok(RepairPolicy::Skip),
                other => Err(JsonError::msg(format!("unknown repair policy: {other:?}"))),
            };
        }
        let attempts = value.u64_field("reprompt").map_err(|_| {
            JsonError::msg(
                "RepairPolicy: expected \"off\"/\"constrain\"/\"skip\" or {\"reprompt\": n}",
            )
        })?;
        let max_attempts = u32::try_from(attempts).map_err(|_| {
            JsonError::msg(format!(
                "RepairPolicy: reprompt budget too large: {attempts}"
            ))
        })?;
        if max_attempts == 0 {
            return Err(JsonError::msg("RepairPolicy: reprompt budget must be >= 1"));
        }
        Ok(RepairPolicy::Reprompt { max_attempts })
    }
}

/// What the planning layer "parsed" out of a (possibly corrupted)
/// completion — the validator's input.
#[derive(Debug, Clone, PartialEq)]
pub enum Proposal {
    /// A well-formed action decision.
    Action(Subgoal),
    /// The completion did not parse into any action schema.
    Malformed,
    /// The completion was cut off at the context limit mid-decision.
    Truncated,
}

/// Why the validator rejected a proposal.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// Unparseable decision text.
    Malformed,
    /// Decision cut off before a complete action.
    Truncated,
    /// The decision references an entity the environment does not know.
    HallucinatedEntity {
        /// The offending entity name, verbatim.
        entity: String,
    },
    /// A well-formed action the environment does not afford right now.
    InvalidAction {
        /// The rejected action.
        subgoal: Subgoal,
    },
}

impl ValidationError {
    /// Structured error feedback quoted back to the model in a repair
    /// re-prompt. Offending entity spans are sliced UTF-8-safely via
    /// [`floor_char`] — entity names routinely carry multi-byte characters,
    /// and `&entity[..FEEDBACK_SPAN]` would panic mid-char.
    pub fn feedback(&self) -> String {
        match self {
            ValidationError::Malformed => {
                "your previous reply did not parse as an action; emit exactly one action".into()
            }
            ValidationError::Truncated => {
                "your previous reply was cut off before a complete action; be concise".into()
            }
            ValidationError::HallucinatedEntity { entity } => {
                let span = &entity[..floor_char(entity, FEEDBACK_SPAN)];
                format!("the entity \"{span}\" does not exist in this environment")
            }
            ValidationError::InvalidAction { subgoal } => {
                format!("the action \"{subgoal}\" is not applicable in the current state")
            }
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Malformed => f.write_str("malformed decision"),
            ValidationError::Truncated => f.write_str("truncated decision"),
            ValidationError::HallucinatedEntity { entity } => {
                write!(f, "hallucinated entity {entity:?}")
            }
            ValidationError::InvalidAction { subgoal } => {
                write!(f, "invalid action \"{subgoal}\"")
            }
        }
    }
}

/// The affordance-schema validator run on every LLM plan decision before
/// actuation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanValidator;

impl PlanValidator {
    /// Checks a proposal against what the environment currently affords.
    ///
    /// **Soundness invariant**: `Ok(sg)` implies `affordances.permits(&sg)`
    /// — the validator never accepts an action the environment would
    /// subsequently reject as unrecognized.
    pub fn validate(
        proposal: &Proposal,
        affordances: &AffordanceSet,
    ) -> Result<Subgoal, ValidationError> {
        match proposal {
            Proposal::Malformed => Err(ValidationError::Malformed),
            Proposal::Truncated => Err(ValidationError::Truncated),
            Proposal::Action(sg) => {
                if let Some(entity) = affordances.unknown_entity(sg) {
                    Err(ValidationError::HallucinatedEntity {
                        entity: entity.to_owned(),
                    })
                } else if !affordances.permits(sg) {
                    Err(ValidationError::InvalidAction {
                        subgoal: sg.clone(),
                    })
                } else {
                    Ok(sg.clone())
                }
            }
        }
    }
}

/// Deterministically materializes a response flaw into the proposal the
/// planning layer parses from the corrupted completion. Pure in
/// `(flaw, intended, affordances)` — all variation comes from the flaw's
/// `salt`, drawn on the injector's dedicated stream.
pub fn materialize(
    flaw: SemanticFlaw,
    intended: &Subgoal,
    affordances: &AffordanceSet,
) -> Proposal {
    match flaw.kind {
        SemanticFaultKind::Malformed => Proposal::Malformed,
        SemanticFaultKind::ContextTruncation => Proposal::Truncated,
        SemanticFaultKind::HallucinatedEntity => Proposal::Action(substitute_entity(
            intended,
            PHANTOM_ENTITIES[(flaw.salt % PHANTOM_ENTITIES.len() as u64) as usize],
        )),
        SemanticFaultKind::InvalidAction => {
            Proposal::Action(invalid_action(flaw.salt, intended, affordances))
        }
    }
}

/// What a corrupted decision does when no guardrail stands in the way:
/// unparseable/truncated plans leave the agent exploring; hallucinated and
/// invalid actions are attempted as-is and fail in the environment.
pub fn unguarded_effect(proposal: &Proposal) -> Subgoal {
    match proposal {
        Proposal::Malformed | Proposal::Truncated => Subgoal::Explore,
        Proposal::Action(sg) => sg.clone(),
    }
}

/// Rewrites the intended subgoal to reference a phantom entity, keeping the
/// skill pattern (the corruption a grounding failure produces: right verb,
/// wrong noun). Idle subgoals hallucinate a pickup out of thin air.
fn substitute_entity(intended: &Subgoal, phantom: &str) -> Subgoal {
    match intended.clone() {
        Subgoal::GoTo { cell, .. } => Subgoal::GoTo {
            target: phantom.into(),
            cell,
        },
        Subgoal::Pick { .. } => Subgoal::Pick {
            object: phantom.into(),
        },
        Subgoal::Place { dest, .. } => Subgoal::Place {
            object: phantom.into(),
            dest,
        },
        Subgoal::Open { .. } => Subgoal::Open {
            container: phantom.into(),
        },
        Subgoal::Gather { .. } => Subgoal::Gather {
            resource: phantom.into(),
        },
        Subgoal::Craft { .. } => Subgoal::Craft {
            item: phantom.into(),
        },
        Subgoal::Cook { stage, .. } => Subgoal::Cook {
            dish: phantom.into(),
            stage,
        },
        Subgoal::Serve { .. } => Subgoal::Serve {
            dish: phantom.into(),
        },
        Subgoal::MoveBox { dest, .. } => Subgoal::MoveBox {
            box_name: phantom.into(),
            dest,
        },
        Subgoal::LiftTogether { partner, .. } => Subgoal::LiftTogether {
            box_name: phantom.into(),
            partner,
        },
        Subgoal::ArmMove { to, .. } => Subgoal::ArmMove {
            object: phantom.into(),
            to,
        },
        Subgoal::Skill { .. } => Subgoal::Skill {
            name: phantom.into(),
        },
        Subgoal::Explore | Subgoal::Wait => Subgoal::Pick {
            object: phantom.into(),
        },
    }
}

/// Produces a syntactically valid action the environment does not afford:
/// a real entity wrapped in a skill pattern the menu does not offer. Falls
/// back to a hallucination if every probe pattern happens to be afforded.
fn invalid_action(salt: u64, intended: &Subgoal, affordances: &AffordanceSet) -> Subgoal {
    let entity = intended
        .referenced_entities()
        .first()
        .map(|e| (*e).to_owned())
        .or_else(|| {
            affordances
                .candidates()
                .iter()
                .flat_map(|c| c.referenced_entities())
                .next()
                .map(str::to_owned)
        })
        .unwrap_or_else(|| "site_0".to_owned());
    let builders: [fn(String) -> Subgoal; 4] = [
        |e| Subgoal::Craft { item: e },
        |e| Subgoal::Open { container: e },
        |e| Subgoal::Serve { dish: e },
        |e| Subgoal::Gather { resource: e },
    ];
    let start = (salt % builders.len() as u64) as usize;
    for k in 0..builders.len() {
        let sg = builders[(start + k) % builders.len()](entity.clone());
        if !affordances.permits(&sg) {
            return sg;
        }
    }
    substitute_entity(
        intended,
        PHANTOM_ENTITIES[(salt % PHANTOM_ENTITIES.len() as u64) as usize],
    )
}

/// Outcome of one guardrail pass over one plan decision.
#[derive(Debug)]
pub struct GuardrailVerdict {
    /// The subgoal to actually execute this step.
    pub subgoal: Subgoal,
    /// Responses paid for during repair re-prompts (the caller feeds them
    /// into its usage/ledger accounting).
    pub responses: Vec<LlmResponse>,
    /// Total validation time this pass (→ `Phase::Validate` span).
    pub validate_latency: SimDuration,
    /// Total repair-inference time this pass (→ `Phase::Repair` span).
    pub repair_latency: SimDuration,
}

/// Runs the full validate-and-repair pipeline over one plan decision.
///
/// `intended` is the decision the planning layer produced (before content
/// corruption); `flaw` is the semantic-plane marker stamped on the response
/// that produced it, if any. Repair re-prompts go through `engine` — the
/// caller's tenant handle onto the shared inference service — and pay real
/// tokens; every counter lands in `stats`. Termination is bounded: at most
/// `max_attempts` repair inferences per decision, regardless of how the
/// corruption schedule unfolds.
#[allow(clippy::too_many_arguments)]
pub fn guard_decision(
    engine: &mut EngineHandle,
    policy: RepairPolicy,
    intended: &Subgoal,
    flaw: Option<SemanticFlaw>,
    affordances: &AffordanceSet,
    preamble: &str,
    goal: &str,
    difficulty: f64,
    opts: InferenceOpts,
    stats: &mut RepairStats,
) -> GuardrailVerdict {
    let mut verdict = GuardrailVerdict {
        subgoal: Subgoal::Wait,
        responses: Vec::new(),
        validate_latency: SimDuration::ZERO,
        repair_latency: SimDuration::ZERO,
    };
    let mut proposal = match flaw {
        Some(f) => materialize(f, intended, affordances),
        None => Proposal::Action(intended.clone()),
    };
    if policy.is_off() {
        // Unguarded baseline: no validation, the corruption lands as-is.
        verdict.subgoal = unguarded_effect(&proposal);
        return verdict;
    }
    stats.validations += 1;
    verdict.validate_latency += VALIDATE_COST;
    let first = PlanValidator::validate(&proposal, affordances);
    let mut error = match first {
        Ok(sg) => {
            verdict.subgoal = sg;
            stats.validate_latency += verdict.validate_latency;
            return verdict;
        }
        Err(e) => {
            note_rejection(stats, &e);
            e
        }
    };
    match policy {
        RepairPolicy::Off => unreachable!("handled above"),
        RepairPolicy::Skip => {
            stats.skipped_steps += 1;
            verdict.subgoal = Subgoal::Wait;
        }
        RepairPolicy::Constrain => {
            stats.constrained += 1;
            verdict.subgoal = match &proposal {
                Proposal::Action(sg) => affordances.nearest_valid(sg),
                Proposal::Malformed | Proposal::Truncated => Subgoal::Explore,
            };
        }
        RepairPolicy::Reprompt { max_attempts } => {
            let mut accepted = None;
            for _ in 0..max_attempts {
                stats.repair_attempts += 1;
                let prompt = repair_prompt(preamble, goal, &error, affordances);
                let result = engine.infer(
                    LlmRequest::new(Purpose::Planning, &prompt, 40)
                        .with_difficulty(difficulty)
                        .with_opts(opts),
                );
                let response = match result {
                    Ok(r) => r,
                    // A transport fault burned this repair attempt.
                    Err(_) => continue,
                };
                stats.repair_tokens += response.prompt_tokens + response.output_tokens;
                stats.repair_cost_usd += response.cost_usd;
                verdict.repair_latency += response.latency;
                let reflawed = response.flaw;
                verdict.responses.push(response);
                proposal = match reflawed {
                    // The repair completion itself came back corrupted.
                    Some(f) => materialize(f, intended, affordances),
                    // The feedback landed: the model re-emits its intent,
                    // snapped onto the menu when the intent itself was off.
                    None => Proposal::Action(if affordances.permits(intended) {
                        intended.clone()
                    } else {
                        affordances.nearest_valid(intended)
                    }),
                };
                stats.validations += 1;
                verdict.validate_latency += VALIDATE_COST;
                match PlanValidator::validate(&proposal, affordances) {
                    Ok(sg) => {
                        stats.repaired += 1;
                        accepted = Some(sg);
                        break;
                    }
                    Err(e) => {
                        note_rejection(stats, &e);
                        error = e;
                    }
                }
            }
            verdict.subgoal = match accepted {
                Some(sg) => sg,
                None => {
                    // Budget exhausted: the invalid decision goes through
                    // unguarded — the residual the sweep measures.
                    stats.residual_invalid += 1;
                    unguarded_effect(&proposal)
                }
            };
        }
    }
    stats.validate_latency += verdict.validate_latency;
    stats.repair_latency += verdict.repair_latency;
    verdict
}

fn note_rejection(stats: &mut RepairStats, error: &ValidationError) {
    match error {
        ValidationError::Malformed => stats.rejected_malformed += 1,
        ValidationError::Truncated => stats.rejected_truncated += 1,
        ValidationError::HallucinatedEntity { .. } => stats.rejected_hallucinated += 1,
        ValidationError::InvalidAction { .. } => stats.rejected_invalid_action += 1,
    }
}

/// The repair re-prompt: the validator's structured error feedback plus the
/// full afforded menu, so the model can ground its retry.
fn repair_prompt(
    preamble: &str,
    goal: &str,
    error: &ValidationError,
    affordances: &AffordanceSet,
) -> String {
    let mut b = PromptBuilder::new(preamble);
    b.push("task goal", goal)
        .push("validator error", &error.feedback())
        .push_candidates(affordances.candidates())
        .push(
            "instruction",
            "Your previous decision was rejected. Re-emit exactly one action \
             chosen from the available actions above.",
        );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use embodied_llm::{
        LlmEngine, ModelProfile, ResilientEngine, RetryPolicy, SemanticFaultProfile,
    };

    fn menu() -> AffordanceSet {
        AffordanceSet::from_candidates(vec![
            Subgoal::Pick {
                object: "apple_1".into(),
            },
            Subgoal::Place {
                object: "apple_1".into(),
                dest: "table".into(),
            },
        ])
    }

    fn engine() -> EngineHandle {
        EngineHandle::from(ResilientEngine::new(
            LlmEngine::new(ModelProfile::gpt4_api(), 7),
            RetryPolicy::standard(),
            7,
        ))
    }

    fn flaw(kind: SemanticFaultKind, salt: u64) -> SemanticFlaw {
        SemanticFlaw { kind, salt }
    }

    #[test]
    fn validator_accepts_only_afforded_actions() {
        let aff = menu();
        let ok = Proposal::Action(Subgoal::Pick {
            object: "apple_1".into(),
        });
        let sg = PlanValidator::validate(&ok, &aff).expect("menu member accepted");
        assert!(aff.permits(&sg));
        assert!(matches!(
            PlanValidator::validate(&Proposal::Malformed, &aff),
            Err(ValidationError::Malformed)
        ));
        assert!(matches!(
            PlanValidator::validate(&Proposal::Truncated, &aff),
            Err(ValidationError::Truncated)
        ));
        let halluc = Proposal::Action(Subgoal::Pick {
            object: "ghost_9".into(),
        });
        assert!(matches!(
            PlanValidator::validate(&halluc, &aff),
            Err(ValidationError::HallucinatedEntity { .. })
        ));
        let invalid = Proposal::Action(Subgoal::Craft {
            item: "apple_1".into(),
        });
        assert!(matches!(
            PlanValidator::validate(&invalid, &aff),
            Err(ValidationError::InvalidAction { .. })
        ));
    }

    #[test]
    fn materialize_covers_every_kind_and_is_rejected() {
        let aff = menu();
        let intended = Subgoal::Pick {
            object: "apple_1".into(),
        };
        for (i, kind) in SemanticFaultKind::ALL.into_iter().enumerate() {
            let p = materialize(flaw(kind, i as u64 * 13 + 1), &intended, &aff);
            assert!(
                PlanValidator::validate(&p, &aff).is_err(),
                "{kind} must materialize into a rejectable proposal"
            );
        }
    }

    #[test]
    fn hallucination_feedback_is_utf8_safe_at_every_span() {
        // The satellite fix: slicing a multi-word, multi-byte entity name
        // into the feedback prompt must never panic on a char boundary.
        for name in PHANTOM_ENTITIES {
            for max in 0..=name.len() + 2 {
                let err = ValidationError::HallucinatedEntity {
                    entity: name.to_owned(),
                };
                let _ = err.feedback();
                // And the underlying slice at every possible span width:
                let _ = &name[..floor_char(name, max)];
            }
        }
    }

    #[test]
    fn off_policy_passes_corruption_through_with_zero_stats() {
        let aff = menu();
        let intended = Subgoal::Pick {
            object: "apple_1".into(),
        };
        let mut stats = RepairStats::default();
        let v = guard_decision(
            &mut engine(),
            RepairPolicy::Off,
            &intended,
            Some(flaw(SemanticFaultKind::Malformed, 3)),
            &aff,
            "sys",
            "goal",
            0.5,
            InferenceOpts::default(),
            &mut stats,
        );
        assert_eq!(v.subgoal, Subgoal::Explore, "malformed → explore");
        assert!(stats.is_quiet(), "Off never validates");
        assert!(v.responses.is_empty());
    }

    #[test]
    fn skip_and_constrain_repair_without_tokens() {
        let aff = menu();
        let intended = Subgoal::Pick {
            object: "apple_1".into(),
        };
        let f = flaw(SemanticFaultKind::HallucinatedEntity, 1);
        let mut stats = RepairStats::default();
        let v = guard_decision(
            &mut engine(),
            RepairPolicy::Skip,
            &intended,
            Some(f),
            &aff,
            "sys",
            "goal",
            0.5,
            InferenceOpts::default(),
            &mut stats,
        );
        assert_eq!(v.subgoal, Subgoal::Wait);
        assert_eq!(stats.skipped_steps, 1);
        assert_eq!(stats.repair_tokens, 0);

        let mut stats = RepairStats::default();
        let v = guard_decision(
            &mut engine(),
            RepairPolicy::Constrain,
            &intended,
            Some(f),
            &aff,
            "sys",
            "goal",
            0.5,
            InferenceOpts::default(),
            &mut stats,
        );
        assert!(aff.permits(&v.subgoal), "constrained action is afforded");
        assert_eq!(stats.constrained, 1);
        assert_eq!(stats.repair_tokens, 0);
    }

    #[test]
    fn reprompt_pays_tokens_and_repairs() {
        let aff = menu();
        let intended = Subgoal::Pick {
            object: "apple_1".into(),
        };
        let mut stats = RepairStats::default();
        let mut eng = engine();
        let v = guard_decision(
            &mut eng,
            RepairPolicy::Reprompt { max_attempts: 2 },
            &intended,
            Some(flaw(SemanticFaultKind::InvalidAction, 5)),
            &aff,
            "sys",
            "goal",
            0.5,
            InferenceOpts::default(),
            &mut stats,
        );
        assert_eq!(v.subgoal, intended, "clean re-prompt restores the intent");
        assert_eq!(stats.repaired, 1);
        assert!(stats.repair_attempts >= 1);
        assert!(stats.repair_tokens > 0, "repair pays real tokens");
        assert!(stats.repair_cost_usd > 0.0);
        assert_eq!(v.responses.len() as u64, stats.repair_attempts);
    }

    #[test]
    fn reprompt_terminates_within_budget_under_persistent_corruption() {
        // Every repair completion is itself corrupted (rate 1.0): the loop
        // must stop at the attempt budget and record a residual.
        let aff = menu();
        let intended = Subgoal::Pick {
            object: "apple_1".into(),
        };
        let mut eng = EngineHandle::from(ResilientEngine::new(
            LlmEngine::new(ModelProfile::gpt4_api(), 7)
                .with_semantic_faults(SemanticFaultProfile::uniform(1.0), 7),
            RetryPolicy::standard(),
            7,
        ));
        let budget = 3;
        let mut stats = RepairStats::default();
        let v = guard_decision(
            &mut eng,
            RepairPolicy::Reprompt {
                max_attempts: budget,
            },
            &intended,
            Some(flaw(SemanticFaultKind::Malformed, 9)),
            &aff,
            "sys",
            "goal",
            0.5,
            InferenceOpts::default(),
            &mut stats,
        );
        assert_eq!(stats.repair_attempts, u64::from(budget));
        assert_eq!(stats.residual_invalid, 1);
        assert_eq!(stats.repaired, 0);
        // The residual executes unguarded; whatever it is, it is a subgoal.
        let _ = v.subgoal;
    }

    #[test]
    fn clean_decision_validates_quietly() {
        let aff = menu();
        let intended = Subgoal::Pick {
            object: "apple_1".into(),
        };
        let mut stats = RepairStats::default();
        let v = guard_decision(
            &mut engine(),
            RepairPolicy::Reprompt { max_attempts: 2 },
            &intended,
            None,
            &aff,
            "sys",
            "goal",
            0.5,
            InferenceOpts::default(),
            &mut stats,
        );
        assert_eq!(v.subgoal, intended);
        assert_eq!(stats.validations, 1);
        assert_eq!(stats.rejections(), 0);
        assert_eq!(stats.repair_attempts, 0);
        assert_eq!(v.validate_latency, VALIDATE_COST);
        assert_eq!(v.repair_latency, SimDuration::ZERO);
    }
}
