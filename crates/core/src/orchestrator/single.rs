//! Single-agent modularized step loop (Fig. 1b): sense → memory →
//! reflection → plan → execute, every phase billed to its module.

use crate::system::EmbodiedSystem;

/// Runs one environment step for a single-agent system.
pub(crate) fn step(sys: &mut EmbodiedSystem) {
    // A crashed (or stalled) single agent simply loses the step — there is
    // no teammate to cover for it.
    if !sys.agent_faults.is_active(0) {
        return;
    }
    let percept = sys.sense_phase(0);
    let (subgoal, _followed) = sys.plan_phase(0, &percept, "");
    sys.execute_with_reflection(0, &subgoal);
}
