//! Decentralized step loop (Fig. 1e): turn-taking dialogue rounds followed
//! by per-agent planning and execution.
//!
//! Dialogue rounds grow with team size, every message is concatenated into
//! every teammate's context, and message *utility* is measured — the
//! machinery behind the paper's Fig. 7 decentralized scalability findings
//! and the "only ~20% of messages are useful" observation.

use crate::modules::CommunicationModule;
use crate::system::EmbodiedSystem;
use embodied_env::Subgoal;
use embodied_profiler::{ModuleKind, Phase};

/// Dialogue rounds per step for a team of `n` (paper §VI: rounds per
/// planning step grow with the number of agents).
pub(crate) fn dialogue_rounds(n: usize) -> usize {
    1 + n.saturating_sub(1) / 4
}

/// Runs one environment step for a decentralized system.
#[allow(clippy::needless_range_loop)] // index drives disjoint &mut sys borrows
pub(crate) fn step(sys: &mut EmbodiedSystem) {
    let n = sys.agents.len();
    for agent in &mut sys.agents {
        agent.inbox.clear();
    }
    // Channel-held messages from earlier steps land first, so late dialogue
    // still reaches this step's planning context.
    sys.flush_delayed();
    // Heartbeat/staleness pass: peers that have gone silent past the
    // threshold get suspected and planned around. Skipped entirely (zero
    // draws, zero state) when the fault layer is inactive.
    if n > 1 && sys.faults_active() {
        heartbeat_round(sys, n);
    }
    let percepts: Vec<_> = (0..n).map(|i| sys.sense_phase_or_placeholder(i)).collect();

    // Communication rounds (skipped entirely when the module is disabled).
    let cluster = sys.agents[0].config.opts.cluster_size;
    let batching = sys.agents[0].config.opts.batching;
    // Invariant across the whole step: hoisted out of the per-agent loops.
    let goal = sys.env.goal_text();
    let difficulty = sys.env.difficulty().scalar();
    let mut recipients: Vec<usize> = Vec::with_capacity(n);
    for _round in 0..dialogue_rounds(n) {
        // Rec. 1: with batching, the round's message generations are issued
        // as one concurrent batch — wall-clock pays only the slowest.
        let mut batch: Vec<(usize, embodied_profiler::SimDuration)> = Vec::new();
        for i in 0..n {
            if sys.agents[i].communication.is_none() || !sys.agent_faults.is_active(i) {
                continue;
            }
            // Coordination need: a pending joint action (e.g. BoxLift).
            let needs_coordination = sys
                .env
                .oracle_subgoals(i)
                .iter()
                .any(|sg| matches!(sg, Subgoal::LiftTogether { .. }));
            let agent = &mut sys.agents[i];
            let knowledge = agent.knowledge(&percepts[i].entities);
            let delta = agent.knowledge_delta(&knowledge);
            if agent.config.opts.plan_then_communicate
                && !CommunicationModule::worth_sending(&delta, needs_coordination)
            {
                continue; // Rec. 8: the plan does not need a message
            }
            let opts = EmbodiedSystem::infer_opts_for(&agent.config, n);
            agent.render_dialogue();
            let comm = agent.communication.as_mut().expect("checked above");
            let comm_tenant = comm.engine().tenant();
            let result = comm.generate(
                i,
                &agent.preamble,
                &goal,
                &percepts[i].text,
                &agent.dialogue_buf,
                &delta,
                difficulty,
                opts,
            );
            let stall = comm.engine_mut().take_stall();
            EmbodiedSystem::note_stall(&mut sys.trace, ModuleKind::Communication, i, stall);
            let msg = match result {
                Ok(m) => m,
                Err(err) => {
                    // Degradation: the message is dropped; the agent keeps
                    // its knowledge delta for the next broadcast attempt.
                    EmbodiedSystem::note_llm_failure(
                        &mut sys.trace,
                        ModuleKind::Communication,
                        i,
                        &err,
                    );
                    sys.degradations.degraded_communication += 1;
                    continue;
                }
            };
            agent.last_broadcast = knowledge;
            if batching {
                batch.push((i, msg.response.latency));
            } else {
                // A round's message generations are an independent fan-out:
                // each reserves a server slot on the shared backend (no
                // window is open here, so this never defers).
                sys.serve_response(
                    ModuleKind::Communication,
                    i,
                    comm_tenant,
                    &msg.response,
                    true,
                );
            }
            sys.note_llm(&msg.response);
            // Rec. 9: with clustering, messages stay within the cluster.
            recipients.clear();
            if cluster > 0 {
                recipients.extend((0..n).filter(|&j| j / cluster == i / cluster));
            } else {
                recipients.extend(0..n);
            }
            sys.deliver_message_to(i, &msg.text, &msg.entities, &recipients);
        }
        if batching {
            sys.trace
                .record_parallel(ModuleKind::Communication, Phase::LlmInference, &batch);
        }
    }

    // Plan + execute. Serving-layer batching restructures the loop into
    // plan-all → close-window → execute-all, so the team's co-arriving
    // planning requests share one batched bill with prefix reuse. The
    // default path keeps the paper's sequential interleaved pipeline
    // (each agent's prompt carries the full dialogue) byte-identically.
    // Crashed and stalled agents lose the step either way.
    if sys.serving_batching() && n > 1 {
        let opts = EmbodiedSystem::infer_opts_for(&sys.agents[0].config, n);
        let prefix = sys.agents[0].preamble.clone();
        sys.open_serving_window(opts, &prefix);
        let mut plans: Vec<Option<Subgoal>> = vec![None; n];
        for i in 0..n {
            if !sys.agent_faults.is_active(i) {
                continue;
            }
            // Lend the agent's reusable dialogue buffer across the planning
            // call (which needs `&mut sys`), then hand it back.
            sys.agents[i].render_dialogue();
            let dialogue = std::mem::take(&mut sys.agents[i].dialogue_buf);
            let (subgoal, _) = sys.plan_phase(i, &percepts[i], &dialogue);
            sys.agents[i].dialogue_buf = dialogue;
            plans[i] = Some(subgoal);
        }
        sys.close_serving_window();
        for (i, plan) in plans.into_iter().enumerate() {
            if let Some(subgoal) = plan {
                sys.execute_with_reflection(i, &subgoal);
            }
        }
    } else {
        for i in 0..n {
            if !sys.agent_faults.is_active(i) {
                continue;
            }
            sys.agents[i].render_dialogue();
            let dialogue = std::mem::take(&mut sys.agents[i].dialogue_buf);
            let (subgoal, _) = sys.plan_phase(i, &percepts[i], &dialogue);
            sys.agents[i].dialogue_buf = dialogue;
            sys.execute_with_reflection(i, &subgoal);
        }
    }
}

/// One heartbeat exchange: every active agent pings every live peer over
/// the (possibly lossy / partitioned) channel, receivers update
/// last-heard stamps, and any peer silent past the staleness threshold
/// becomes *suspected* — its joint subgoals are planned around until it is
/// heard again. Deterministic: draws follow the fixed (sender, receiver)
/// iteration order.
fn heartbeat_round(sys: &mut EmbodiedSystem, n: usize) {
    let step = sys.step;
    for j in 0..n {
        if sys.agents[j].peer_last_heard.len() != n {
            // First fault-aware step: everyone was heard "just now".
            sys.agents[j].peer_last_heard = vec![step; n];
        }
    }
    for i in 0..n {
        if !sys.agent_faults.is_active(i) {
            continue; // a crashed or frozen process emits no heartbeat
        }
        for j in 0..n {
            if i == j || sys.agent_faults.is_down(j) {
                continue;
            }
            if sys.channel.heartbeat_delivered(i, j, n) {
                sys.agents[j].peer_last_heard[i] = step;
            }
        }
    }
    let threshold = sys.agent_faults.profile().staleness_after.max(1);
    for j in 0..n {
        if sys.agent_faults.is_down(j) {
            continue;
        }
        for i in 0..n {
            if i == j {
                continue;
            }
            let silent_for = step.saturating_sub(sys.agents[j].peer_last_heard[i]);
            if silent_for >= threshold {
                if sys.agents[j].suspected.insert(i) {
                    sys.agent_faults.stats.suspected_peers += 1;
                }
            } else {
                sys.agents[j].suspected.remove(&i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::dialogue_rounds;

    #[test]
    fn dialogue_rounds_grow_with_team_size() {
        assert_eq!(dialogue_rounds(1), 1);
        assert_eq!(dialogue_rounds(2), 1);
        assert_eq!(dialogue_rounds(4), 1);
        assert_eq!(dialogue_rounds(5), 2);
        assert_eq!(dialogue_rounds(8), 2);
        assert_eq!(dialogue_rounds(9), 3);
    }

    #[test]
    fn cluster_partition_matches_rec9() {
        // Recipients with cluster size 2 over 6 agents: {0,1},{2,3},{4,5}.
        let n = 6usize;
        let cluster = 2usize;
        let recipients_of =
            |i: usize| -> Vec<usize> { (0..n).filter(|&j| j / cluster == i / cluster).collect() };
        assert_eq!(recipients_of(0), vec![0, 1]);
        assert_eq!(recipients_of(3), vec![2, 3]);
        assert_eq!(recipients_of(5), vec![4, 5]);
    }
}
