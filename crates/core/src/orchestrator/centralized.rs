//! Centralized step loop (Fig. 1d): one central LLM plans for every agent
//! from a joint prompt; agents execute and report local feedback.
//!
//! Calls per step stay constant while the joint prompt grows linearly with
//! the team — the paper's "centralized systems scale linearly in calls and
//! tokens" — but the central planner's reasoning burden grows with the
//! joint action space, which is what collapses its success rate (Fig. 7a).

use crate::guardrail;
use crate::modules::{Percept, RecordKind};
use crate::prompt::PromptBuilder;
use crate::system::EmbodiedSystem;
use embodied_env::Subgoal;
use embodied_llm::{InferenceOpts, LlmRequest, Purpose, SemanticFlaw};
use embodied_profiler::{ModuleKind, Phase, RepairStats, SimDuration};

/// Difficulty inflation per extra agent the central planner must reason
/// jointly about (action interdependencies grow combinatorially).
const JOINT_DIFFICULTY_PER_AGENT: f64 = 0.09;

/// Runs one environment step for a centralized system.
pub(crate) fn step(sys: &mut EmbodiedSystem) {
    // A dead coordinator takes the whole planning pipeline with it: no
    // joint plan, no instructions, no feedback loop. Agents run headless
    // until the episode ends or a failover promotes a survivor.
    if sys.agent_faults.coordinator_down() {
        headless_step(sys);
        return;
    }
    let assignments = central_round(sys, 0.0);
    // Instruction broadcast: one communication call distributing the plan.
    broadcast_instructions(sys, &assignments);
    // COHERENT-style proposal-feedback-adjustment: the center additionally
    // extracts a structured feedback message from each agent every step,
    // which is what makes communication its bottleneck (paper §IV-A).
    if sys.agents[0].config.central_feedback_extraction {
        extract_feedback(sys, &assignments);
    }
    execute_assignments(sys, &assignments);
}

/// Executes the center's per-agent assignments, each delivered over the
/// instruction channel: a lost, garbled, or late instruction leaves the
/// agent on its stale plan (or exploring) this step. Crashed and stalled
/// agents do nothing. A `none()` channel delivers every assignment intact
/// with zero draws.
pub(crate) fn execute_assignments(sys: &mut EmbodiedSystem, assignments: &[Subgoal]) {
    let n = sys.agents.len();
    for (i, assigned) in assignments.iter().enumerate() {
        if !sys.agent_faults.is_active(i) {
            continue;
        }
        let center_host = sys.agent_faults.coordinator;
        let subgoal = match sys.channel.fate(center_host, i, n) {
            crate::faults::DeliveryFate::Deliver {
                corrupt: false,
                delay: 0,
                ..
            } => {
                sys.agents[i].last_plan = Some(assigned.clone());
                assigned.clone()
            }
            _ => {
                sys.agent_faults.stats.lost_assignments += 1;
                sys.agents[i].last_plan.clone().unwrap_or(Subgoal::Explore)
            }
        };
        let outcome = sys.execute_with_reflection(i, &subgoal);
        // Local feedback flows back into the central memory.
        if let Some(central) = sys.central.as_mut() {
            central.memory.store(
                RecordKind::Action,
                format!("agent {i}: {}", outcome.note),
                Vec::new(),
            );
        }
    }
}

/// One step with the coordinator dead and no failover (yet): surviving
/// agents still sense and act, but only on their last instruction (or by
/// exploring) — coordination is gone, which is the centralized
/// single-point-of-failure cliff the resilience experiments measure.
pub(crate) fn headless_step(sys: &mut EmbodiedSystem) {
    sys.agent_faults.note_headless_step();
    let n = sys.agents.len();
    for i in 0..n {
        if !sys.agent_faults.is_active(i) {
            continue;
        }
        let _ = sys.sense_phase(i);
        let subgoal = sys.agents[i].last_plan.clone().unwrap_or(Subgoal::Explore);
        sys.execute_with_reflection(i, &subgoal);
    }
}

/// One central planning pass: joint prompt → one inference → per-agent
/// assignments. `quality_bonus` lets the hybrid refine pass model the value
/// of agent feedback. Also runs sensing/reflection for every agent.
pub(crate) fn central_round(sys: &mut EmbodiedSystem, quality_bonus: f64) -> Vec<Subgoal> {
    let n = sys.agents.len();
    let percepts: Vec<Percept> = (0..n).map(|i| sys.sense_phase_or_placeholder(i)).collect();
    plan_assignments(sys, &percepts, quality_bonus, false)
}

/// Central planning over pre-computed percepts (used by the hybrid refine
/// pass, which must not re-sense).
pub(crate) fn plan_assignments(
    sys: &mut EmbodiedSystem,
    percepts: &[Percept],
    quality_bonus: f64,
    feedback_informed: bool,
) -> Vec<Subgoal> {
    let n = sys.agents.len();
    let goal = sys.env.goal_text();
    let base_difficulty = sys.env.difficulty().scalar();
    let joint_difficulty =
        (base_difficulty + JOINT_DIFFICULTY_PER_AGENT * (n as f64 - 1.0)).min(0.98);
    let step = sys.step;

    // Per-agent menus, knowledge-filtered against the central store: a
    // point query per referenced entity (fresh percepts win over stale
    // markers, as the old materialized union did).
    {
        let central = sys.central.as_mut().expect("centralized system");
        central.memory.begin_step(step);
        for (i, p) in percepts.iter().enumerate() {
            central.memory.store(
                RecordKind::Observation,
                format!("agent {i}: {}", p.text),
                p.entities.clone(),
            );
        }
    }
    let central_knows = {
        let central = sys.central.as_ref().expect("centralized system");
        move |e: &str| {
            central.memory.knows(e)
                || percepts
                    .iter()
                    .any(|p| p.entities.iter().any(|known| known == e))
        }
    };
    let mut oracles = Vec::with_capacity(n);
    let mut menus = Vec::with_capacity(n);
    for i in 0..n {
        // The center knows exactly who is unresponsive (it just saw their
        // report slots empty) and assigns them Wait, routing joint work
        // around them until they rejoin.
        if !sys.agent_faults.is_active(i) {
            oracles.push(Vec::new());
            menus.push(vec![Subgoal::Wait]);
            continue;
        }
        let mut oracle =
            sys.agents[i].filter_subgoals_with(sys.env.oracle_subgoals(i), central_knows, step);
        let mut menu =
            sys.agents[i].filter_subgoals_with(sys.env.candidate_subgoals(i), central_knows, step);
        let partner_missing = |sg: &Subgoal| {
            matches!(sg, Subgoal::LiftTogether { partner, .. }
                if *partner < n && !sys.agent_faults.is_active(*partner))
        };
        oracle.retain(|sg| !partner_missing(sg));
        menu.retain(|sg| !partner_missing(sg));
        if menu.is_empty() {
            menu.push(Subgoal::Explore);
        }
        oracles.push(oracle);
        menus.push(menu);
    }

    let central = sys.central.as_mut().expect("centralized system");
    central.memory_buf.clear();
    let retrieval = central.memory.retrieve_write(&mut central.memory_buf);
    sys.trace
        .record(ModuleKind::Memory, Phase::Retrieval, 0, retrieval.latency);

    // One joint prompt covering every agent: linear token growth with n.
    let mut b = PromptBuilder::new(&central.preamble);
    b.push("task goal", &goal)
        .push("memory", &central.memory_buf);
    for (i, p) in percepts.iter().enumerate() {
        b.push(&format!("agent {i} observation"), &p.text);
        b.push_candidates(&menus[i]);
    }
    b.push(
        "instruction",
        "Assign the best next action to every agent, resolving conflicts \
         and interdependencies between their actions.",
    );
    let opts = EmbodiedSystem::infer_opts_for(&sys.agents[0].config, sys.agents.len());
    let central_tenant = central.planning.engine().tenant();
    let prompt = b.build();
    let result = central.planning.engine_mut().infer(
        LlmRequest::new(Purpose::Planning, &prompt, 60 + 45 * n as u64)
            .with_difficulty(joint_difficulty)
            .with_opts(opts),
    );
    let stall = central.planning.engine_mut().take_stall();
    EmbodiedSystem::note_stall(&mut sys.trace, ModuleKind::Planning, 0, stall);
    let response = match result {
        Ok(r) => r,
        Err(err) => {
            // Graceful degradation: the central planner is down this step,
            // so every agent falls back to exploring on its own.
            EmbodiedSystem::note_llm_failure(&mut sys.trace, ModuleKind::Planning, 0, &err);
            sys.degradations.degraded_planning += 1;
            return vec![Subgoal::Explore; n];
        }
    };
    // One joint inference is a cohort request on the shared backend (it
    // reserves a server slot, so follow-up guard/extraction calls queue
    // behind it under a concurrency limit).
    let batched = EmbodiedSystem::serve_llm_response(
        &mut sys.trace,
        &sys.service,
        sys.serving,
        &mut sys.window_entries,
        ModuleKind::Planning,
        0,
        central_tenant,
        &response,
        true,
    );

    // Joint-action interdependencies grow combinatorially with the team;
    // a single planner's chance of a coherent joint assignment decays
    // (Fig. 7a's sharp centralized success decline). Hybrid refinement over
    // agent feedback decomposes the joint problem, softening the decay.
    let mut coordination = 1.0 / (1.0 + 0.16 * (n as f64 - 1.0).powf(1.5));
    if feedback_informed {
        coordination = coordination.sqrt();
    }
    let quality = ((response.quality + quality_bonus)
        * (1.0 - retrieval.inconsistency_penalty)
        * coordination)
        .clamp(0.02, 0.99);
    let engine = central.planning.engine_mut();
    let mut assignments = Vec::with_capacity(n);
    for i in 0..n {
        let correct = engine.sample_correct(quality) && !oracles[i].is_empty();
        let subgoal = if correct {
            oracles[i][0].clone()
        } else {
            let menu = &menus[i];
            menu[engine.sample_index(menu.len())].clone()
        };
        assignments.push(subgoal);
    }
    if !batched {
        sys.note_llm(&response);
    }
    guard_assignments(sys, &mut assignments, response.flaw, joint_difficulty, opts);
    assignments
}

/// Guardrail pass over the joint plan. A flawed central response corrupts
/// exactly one agent's slot (chosen by the flaw's salt — one corrupted
/// section in one big completion, not a wholesale garbling); every active
/// agent's assignment is then validated against its own affordances and
/// repaired per policy through the *central* planning engine. Inert while
/// the policy is `Off`, except that the corruption then lands unguarded.
fn guard_assignments(
    sys: &mut EmbodiedSystem,
    assignments: &mut [Subgoal],
    flaw: Option<SemanticFlaw>,
    difficulty: f64,
    opts: InferenceOpts,
) {
    let n = assignments.len();
    if n == 0 {
        return;
    }
    let victim = flaw.map(|f| (f.salt % n as u64) as usize);
    let policy = sys.agents[0].config.repair_policy;
    if policy.is_off() {
        // Unguarded baseline: the corruption lands as-is on its victim and
        // fails in the environment.
        if let Some(f) = flaw {
            let victim = victim.expect("flaw implies victim");
            let aff = sys.env.affordances(victim);
            let proposal = guardrail::materialize(f, &assignments[victim], &aff);
            assignments[victim] = guardrail::unguarded_effect(&proposal);
        }
        return;
    }
    let goal = sys.env.goal_text();
    for (i, assigned) in assignments.iter_mut().enumerate() {
        if !sys.agent_faults.is_active(i) {
            continue;
        }
        let aff = sys.env.affordances(i);
        let flaw_i = flaw.filter(|_| victim == Some(i));
        let mut stats = RepairStats::default();
        let central = sys.central.as_mut().expect("centralized system");
        let central_tenant = central.planning.engine().tenant();
        let verdict = guardrail::guard_decision(
            central.planning.engine_mut(),
            policy,
            assigned,
            flaw_i,
            &aff,
            &central.preamble,
            &goal,
            difficulty,
            opts,
            &mut stats,
        );
        let stall = central.planning.engine_mut().take_stall();
        EmbodiedSystem::note_stall(&mut sys.trace, ModuleKind::Planning, 0, stall);
        // Re-prompt repairs went back through the shared backend and pay
        // real queue time under a concurrency limit.
        if !sys.serving.is_passthrough() && !verdict.responses.is_empty() {
            let queue = sys.service.queue_solo(central_tenant, sys.trace.now());
            if !queue.is_zero() {
                sys.trace
                    .record(ModuleKind::Planning, Phase::Queue, 0, queue);
            }
        }
        if verdict.validate_latency != SimDuration::ZERO {
            sys.trace.record(
                ModuleKind::Planning,
                Phase::Validate,
                0,
                verdict.validate_latency,
            );
        }
        if verdict.repair_latency != SimDuration::ZERO {
            sys.trace.record(
                ModuleKind::Planning,
                Phase::Repair,
                0,
                verdict.repair_latency,
            );
        }
        for r in &verdict.responses {
            sys.note_llm(r);
        }
        *assigned = verdict.subgoal;
        // Re-ground on phantom: the center's joint plan referenced an
        // entity this agent's affordances do not contain. Under closed-loop
        // recovery the agent re-observes so the next joint prompt is built
        // from a fresh frame instead of the same degraded one.
        if !sys.recovery_policy.is_off() && stats.rejected_hallucinated > 0 {
            sys.recovery_stats.phantom_regrounds += 1;
            sys.forced_reobserve(i);
        }
        sys.repairs.merge(&stats);
    }
}

/// Per-agent feedback extraction (COHERENT's adjustment loop): one
/// communication-engine call per agent to parse its proposal feedback.
pub(crate) fn extract_feedback(sys: &mut EmbodiedSystem, assignments: &[Subgoal]) {
    let goal = sys.env.goal_text();
    let difficulty = sys.env.difficulty().scalar();
    let opts = EmbodiedSystem::infer_opts_for(&sys.agents[0].config, sys.agents.len());
    // The per-agent extraction calls are an independent fan-out over one
    // shared central preamble: with batching on, they ride one serving
    // window (one batched bill, prefix reused past the first member).
    let windowed = sys.serving_batching()
        && assignments.len() > 1
        && sys
            .central
            .as_ref()
            .is_some_and(|c| c.communication.is_some());
    if windowed {
        let prefix = sys
            .central
            .as_ref()
            .expect("checked above")
            .preamble
            .clone();
        sys.open_serving_window(opts, &prefix);
    }
    for (i, sg) in assignments.iter().enumerate() {
        // An unresponsive agent has no feedback to extract.
        if !sys.agent_faults.is_active(i) {
            continue;
        }
        let Some(central) = sys.central.as_mut() else {
            return;
        };
        let Some(comm) = central.communication.as_mut() else {
            return;
        };
        let preamble = central.preamble.clone();
        let comm_tenant = comm.engine().tenant();
        let result = comm.generate(
            i,
            &preamble,
            &goal,
            &format!("extract agent {i}'s feedback on the proposal: {sg}"),
            "",
            &[],
            difficulty,
            opts,
        );
        let stall = comm.engine_mut().take_stall();
        EmbodiedSystem::note_stall(&mut sys.trace, ModuleKind::Communication, i, stall);
        let msg = match result {
            Ok(m) => m,
            Err(err) => {
                // Degradation: this agent's feedback is lost this step.
                EmbodiedSystem::note_llm_failure(
                    &mut sys.trace,
                    ModuleKind::Communication,
                    i,
                    &err,
                );
                sys.degradations.degraded_communication += 1;
                continue;
            }
        };
        let deferred = EmbodiedSystem::serve_llm_response(
            &mut sys.trace,
            &sys.service,
            sys.serving,
            &mut sys.window_entries,
            ModuleKind::Communication,
            i,
            comm_tenant,
            &msg.response,
            true,
        );
        if !deferred {
            sys.note_llm(&msg.response);
        }
        sys.messages.generated += 1;
        let central = sys.central.as_mut().expect("checked above");
        central.memory.store(
            RecordKind::Dialogue,
            format!("agent {i} feedback on {sg}"),
            Vec::new(),
        );
    }
    if windowed {
        sys.close_serving_window();
    }
}

/// The central planner distributes instructions with one communication
/// call; each instruction counts as a generated message, useful when it
/// assigns productive (oracle-consistent) work.
pub(crate) fn broadcast_instructions(sys: &mut EmbodiedSystem, assignments: &[Subgoal]) {
    let goal = sys.env.goal_text();
    let difficulty = sys.env.difficulty().scalar();
    let opts = EmbodiedSystem::infer_opts_for(&sys.agents[0].config, sys.agents.len());
    let Some(central) = sys.central.as_mut() else {
        return;
    };
    let Some(comm) = central.communication.as_mut() else {
        return;
    };
    let comm_tenant = comm.engine().tenant();
    let instruction_text: Vec<String> = assignments
        .iter()
        .enumerate()
        .map(|(i, sg)| format!("agent {i}: {sg}"))
        .collect();
    let preamble = central.preamble.clone();
    let result = comm.generate(
        usize::MAX, // the center itself
        &preamble,
        &goal,
        &format!("instructions: {}", instruction_text.join("; ")),
        "",
        &[],
        difficulty,
        opts,
    );
    let stall = comm.engine_mut().take_stall();
    EmbodiedSystem::note_stall(&mut sys.trace, ModuleKind::Communication, 0, stall);
    let msg = match result {
        Ok(m) => m,
        Err(err) => {
            // Degradation: the broadcast is dropped — agents keep their
            // assignments but never hear them, so no messages are counted.
            EmbodiedSystem::note_llm_failure(&mut sys.trace, ModuleKind::Communication, 0, &err);
            sys.degradations.degraded_communication += 1;
            return;
        }
    };
    let deferred = EmbodiedSystem::serve_llm_response(
        &mut sys.trace,
        &sys.service,
        sys.serving,
        &mut sys.window_entries,
        ModuleKind::Communication,
        0,
        comm_tenant,
        &msg.response,
        true,
    );
    if !deferred {
        sys.note_llm(&msg.response);
    }
    // Every instruction is a message; productive ones count as useful.
    // Crashed agents miss theirs outright.
    for (i, sg) in assignments.iter().enumerate() {
        sys.messages.generated += 1;
        if sys.agent_faults.is_down(i) {
            sys.agent_faults.stats.missed_messages += 1;
            continue;
        }
        if !sg.is_idle() {
            sys.messages.useful += 1;
        }
        sys.agents[i].inbox.push(format!("center: your task: {sg}"));
        sys.agents[i].memory.store(
            RecordKind::Dialogue,
            format!("center assigned: {sg}"),
            Vec::new(),
        );
    }
}
