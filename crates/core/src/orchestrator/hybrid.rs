//! Hybrid (HMAS) step loop: a central plan primes the dialogue, every agent
//! contributes local feedback, and the center refines before execution —
//! combining Fig. 1d's structure with Fig. 1e's feedback (paper §III-D).

use super::centralized;
use crate::modules::RecordKind;
use crate::system::EmbodiedSystem;
use embodied_profiler::ModuleKind;

/// Quality bonus the refine pass earns from incorporating agent feedback.
const FEEDBACK_BONUS: f64 = 0.06;

/// Runs one environment step for a hybrid system.
pub(crate) fn step(sys: &mut EmbodiedSystem) {
    // Hybrid still routes every plan through the center: a dead
    // coordinator degrades it to headless execution exactly like the
    // purely centralized paradigm.
    if sys.agent_faults.coordinator_down() {
        centralized::headless_step(sys);
        return;
    }
    let n = sys.agents.len();
    // Phase 1: sense/reflect + central primer plan.
    let percepts: Vec<_> = (0..n).map(|i| sys.sense_phase_or_placeholder(i)).collect();
    let primer = centralized::plan_assignments(sys, &percepts, 0.0, false);

    // Phase 2: each agent sends local feedback on its primed assignment.
    // The feedback calls are an independent fan-out (each agent reacts to
    // its own primed task): with batching on, they share a serving window.
    let windowed = sys.serving_batching() && n > 1;
    if windowed {
        let opts = EmbodiedSystem::infer_opts_for(&sys.agents[0].config, n);
        let prefix = sys.agents[0].preamble.clone();
        sys.open_serving_window(opts, &prefix);
    }
    let goal = sys.env.goal_text();
    let difficulty = sys.env.difficulty().scalar();
    for i in 0..n {
        if sys.agents[i].communication.is_none() || !sys.agent_faults.is_active(i) {
            continue;
        }
        let agent = &mut sys.agents[i];
        let knowledge = agent.knowledge(&percepts[i].entities);
        let delta = agent.knowledge_delta(&knowledge);
        let opts = EmbodiedSystem::infer_opts_for(&agent.config, n);
        let status = format!("{} | primed task: {}", percepts[i].text, primer[i]);
        let comm = agent.communication.as_mut().expect("checked above");
        let result = comm.generate(
            i,
            &agent.preamble,
            &goal,
            &status,
            "",
            &delta,
            difficulty,
            opts,
        );
        let stall = comm.engine_mut().take_stall();
        EmbodiedSystem::note_stall(&mut sys.trace, ModuleKind::Communication, i, stall);
        let msg = match result {
            Ok(m) => m,
            Err(err) => {
                // Degradation: the center refines without this agent's
                // feedback this step.
                EmbodiedSystem::note_llm_failure(
                    &mut sys.trace,
                    ModuleKind::Communication,
                    i,
                    &err,
                );
                sys.degradations.degraded_communication += 1;
                continue;
            }
        };
        agent.last_broadcast = knowledge;
        let comm_tenant = sys.agents[i]
            .communication
            .as_ref()
            .expect("checked above")
            .engine()
            .tenant();
        let deferred = sys.serve_response(
            ModuleKind::Communication,
            i,
            comm_tenant,
            &msg.response,
            true,
        );
        if !deferred {
            sys.note_llm(&msg.response);
        }
        sys.messages.generated += 1;
        let central = sys.central.as_mut().expect("hybrid system");
        if msg.entities.iter().any(|e| !central.memory.knows(e)) {
            sys.messages.useful += 1;
        }
        central
            .memory
            .store(RecordKind::Dialogue, msg.text, msg.entities);
    }

    if windowed {
        sys.close_serving_window();
    }

    // Phase 3: the center refines with feedback in context, then agents act
    // on whatever instructions actually reach them.
    let refined = centralized::plan_assignments(sys, &percepts, FEEDBACK_BONUS, true);
    centralized::execute_assignments(sys, &refined);
}
