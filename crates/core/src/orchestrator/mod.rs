//! The four execution paradigms of embodied AI systems (paper Fig. 1b–1e).

pub(crate) mod centralized;
pub(crate) mod decentralized;
pub(crate) mod hybrid;
pub(crate) mod single;

use serde::{Deserialize, Serialize};

/// Which cooperation paradigm drives the system's step loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Paradigm {
    /// Single-agent modularized pipeline (Fig. 1b).
    SingleModular,
    /// A central LLM plans for every agent; agents report local feedback
    /// (Fig. 1d).
    Centralized,
    /// Every agent plans for itself and converses with the others in
    /// turn-taking dialogue rounds (Fig. 1e).
    Decentralized,
    /// HMAS: a central plan primes per-agent feedback, then the center
    /// refines (between Fig. 1d and 1e).
    Hybrid,
}

impl std::fmt::Display for Paradigm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Paradigm::SingleModular => "single-modular",
            Paradigm::Centralized => "centralized",
            Paradigm::Decentralized => "decentralized",
            Paradigm::Hybrid => "hybrid",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_are_distinct() {
        let all = [
            Paradigm::SingleModular,
            Paradigm::Centralized,
            Paradigm::Decentralized,
            Paradigm::Hybrid,
        ];
        let mut seen = std::collections::HashSet::new();
        for p in all {
            assert!(seen.insert(p.to_string()));
        }
    }
}
