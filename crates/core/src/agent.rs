//! A modular embodied agent: the composition of the six building blocks
//! (Fig. 1a) plus the per-agent episode state the orchestrators drive.

use crate::config::AgentConfig;
use crate::modules::{
    CommunicationModule, ExecutionModule, MemoryModule, PlanningModule, ReflectionModule,
    SensingModule, WorldMap,
};
use crate::prompt::system_preamble;
use embodied_env::Subgoal;
use embodied_llm::{EngineBuilder, InferenceService, LlmEngine, TenantOwner};
use std::collections::{HashMap, HashSet};

/// One embodied agent assembled from its configured modules.
///
/// Every LLM-backed module holds an [`embodied_llm::EngineHandle`] onto
/// the system's shared [`InferenceService`] rather than a private engine;
/// the service keeps the per-tenant usage ledger this agent's accounting
/// rolls up from.
#[derive(Debug)]
pub struct ModularAgent {
    /// Agent index within the system.
    pub id: usize,
    /// The configuration this agent was built from.
    pub config: AgentConfig,
    /// Perception front-end.
    pub sensing: SensingModule,
    /// Observation/action/dialogue stores.
    pub memory: MemoryModule,
    /// High-level planner.
    pub planning: PlanningModule,
    /// Message generation (multi-agent workloads with communication).
    pub communication: Option<CommunicationModule>,
    /// Outcome verification.
    pub reflection: Option<ReflectionModule>,
    /// Low-level execution.
    pub execution: ExecutionModule,
    /// Accumulated spatial world model (paper §II-A sensing: "a map of
    /// spatial layout, moving entities, obstacles, and resource locations").
    pub map: WorldMap,
    /// System preamble used in this agent's prompts.
    pub preamble: String,
    /// Last failed subgoal and its outcome, until reflection clears it —
    /// feeds the planner's perseveration bias and the reflection prompt.
    pub last_failure: Option<(Subgoal, embodied_env::ExecOutcome)>,
    /// Remaining steps the current high-level plan still covers (Rec. 7).
    pub plan_budget: usize,
    /// Subgoals reflection has blacklisted, mapped to expiry step.
    pub blacklist: HashMap<String, usize>,
    /// Entity set at the time of this agent's last broadcast (computes the
    /// knowledge delta carried by the next message).
    pub last_broadcast: HashSet<String>,
    /// Messages received this round, verbatim, for the dialogue section.
    pub inbox: Vec<String>,
    /// Consecutive steps without progress whose failure reflection has not
    /// resolved — drives compounding planner confusion.
    pub failure_streak: usize,
    /// The most recent successfully planned subgoal — the graceful-
    /// degradation fallback when a planner call faults out entirely.
    pub last_plan: Option<Subgoal>,
    /// Step at which each peer's heartbeat was last heard (sized lazily to
    /// the team on the first fault-aware step; empty when the agent-fault
    /// layer is inactive).
    pub peer_last_heard: Vec<usize>,
    /// Peers this agent currently believes are down (heartbeat silent past
    /// the staleness threshold) — planning routes joint subgoals around
    /// them until they are heard again.
    pub suspected: HashSet<usize>,
    /// Reusable render buffer for the planner's memory/map context section:
    /// allocated once per episode, rewritten in place every step.
    pub memory_buf: String,
    /// Reusable render buffer for the newline-joined inbox (the dialogue
    /// section of communication and planning prompts).
    pub dialogue_buf: String,
    /// The shared inference service this agent's engines are registered
    /// with (per-tenant ledger for usage/resilience rollups).
    service: InferenceService,
}

impl ModularAgent {
    /// Assembles an agent for a workload.
    ///
    /// Engines are seeded per agent and per module so episodes replay
    /// deterministically while modules do not share randomness.
    pub fn new(
        id: usize,
        workload: &str,
        config: AgentConfig,
        landmarks: Vec<String>,
        seed: u64,
        service: &InferenceService,
    ) -> Self {
        let agent_seed = seed ^ ((id as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Each engine draws faults from its own stream (^ 0xfa0_) and
        // jitters its backoff from its own hash seed (^ 0xb0_), so fault
        // arrivals and retry schedules replay deterministically per module.
        let builder = EngineBuilder::new(
            config.fault_profile,
            config.retry_policy,
            agent_seed ^ 0xfa00,
            agent_seed ^ 0xb000,
        );
        let owner = TenantOwner::Agent(id);
        // The planner additionally draws content corruptions from its own
        // semantic stream (^ 0x5e__) — a none() profile draws nothing.
        let planner_engine = service.register(
            builder.wrap(
                LlmEngine::new(config.planner.clone(), agent_seed ^ 0x01)
                    .with_kv_reuse(config.opts.kv_cache)
                    .with_semantic_faults(config.semantic_fault_profile, agent_seed ^ 0x5e01),
                0x01,
            ),
            owner,
        );
        let communication = config
            .communicator
            .as_ref()
            .filter(|_| config.toggles.communication)
            .map(|profile| {
                CommunicationModule::new(service.register(
                    builder.wrap(LlmEngine::new(profile.clone(), agent_seed ^ 0x02), 0x02),
                    owner,
                ))
            });
        let reflection = config
            .reflector
            .as_ref()
            .filter(|_| config.toggles.reflection)
            .map(|profile| {
                ReflectionModule::new(service.register(
                    builder.wrap(LlmEngine::new(profile.clone(), agent_seed ^ 0x03), 0x03),
                    owner,
                ))
            });
        let execution = if config.toggles.execution {
            ExecutionModule::controller_configured(
                agent_seed ^ 0x04,
                config.exec_compute_scale,
                config.actuator_reliability,
            )
            .with_trajectory_planner(config.trajectory_planner)
            .with_grasp_pipeline(config.grasp_pipeline)
        } else {
            ExecutionModule::llm_micro(agent_seed ^ 0x04, config.planner.base_capability)
        };
        let memory = MemoryModule::new(
            config.toggles.memory,
            config.memory_capacity,
            config.opts.dual_memory,
            config.opts.summarization,
            landmarks,
        )
        .with_retrieval_mode(config.retrieval_mode);
        ModularAgent {
            id,
            sensing: SensingModule::new(config.encoder.clone(), agent_seed ^ 0x05),
            memory,
            planning: PlanningModule::new(planner_engine),
            communication,
            reflection,
            execution,
            map: WorldMap::new(),
            preamble: system_preamble(workload, "planning"),
            config,
            last_failure: None,
            plan_budget: 0,
            blacklist: HashMap::new(),
            last_broadcast: HashSet::new(),
            inbox: Vec::new(),
            failure_streak: 0,
            last_plan: None,
            peer_last_heard: Vec::new(),
            suspected: HashSet::new(),
            memory_buf: String::new(),
            dialogue_buf: String::new(),
            service: service.clone(),
        }
    }

    /// Renders the inbox into [`Self::dialogue_buf`] (newline-joined, same
    /// bytes as `inbox.join("\n")`) reusing the buffer's capacity across
    /// steps, and returns it.
    pub fn render_dialogue(&mut self) -> &str {
        self.dialogue_buf.clear();
        for (k, msg) in self.inbox.iter().enumerate() {
            if k > 0 {
                self.dialogue_buf.push('\n');
            }
            self.dialogue_buf.push_str(msg);
        }
        &self.dialogue_buf
    }

    /// Everything the agent currently knows about, given this step's
    /// freshly perceived entities.
    pub fn knowledge(&self, percept_entities: &[String]) -> HashSet<String> {
        let mut known = self.memory.known_entities();
        known.extend(percept_entities.iter().cloned());
        known
    }

    /// Filters subgoals to those the agent can meaningfully plan
    /// (referenced entities known, not blacklisted).
    pub fn filter_subgoals(
        &self,
        subgoals: Vec<Subgoal>,
        knowledge: &HashSet<String>,
        step: usize,
    ) -> Vec<Subgoal> {
        self.filter_subgoals_with(subgoals, |e| knowledge.contains(e), step)
    }

    /// Like [`Self::filter_subgoals`], but against a point-query predicate
    /// instead of a materialized knowledge set. The per-step hot path asks
    /// [`crate::modules::MemoryModule::knows`] per referenced entity rather
    /// than cloning every known entity into a fresh `HashSet` first; the
    /// blacklist key is only rendered while a blacklist is actually live.
    pub fn filter_subgoals_with(
        &self,
        subgoals: Vec<Subgoal>,
        mut knows: impl FnMut(&str) -> bool,
        step: usize,
    ) -> Vec<Subgoal> {
        subgoals
            .into_iter()
            .filter(|sg| {
                sg.entity_refs().into_iter().flatten().all(&mut knows)
                    && (self.blacklist.is_empty()
                        || self
                            .blacklist
                            .get(&sg.to_string())
                            .is_none_or(|&expiry| expiry <= step))
            })
            .collect()
    }

    /// Blacklists a subgoal for `duration` steps from `step`.
    pub fn blacklist_subgoal(&mut self, subgoal: &Subgoal, step: usize, duration: usize) {
        self.blacklist.insert(subgoal.to_string(), step + duration);
    }

    /// Knowledge the agent has gained since its last broadcast.
    pub fn knowledge_delta(&self, knowledge: &HashSet<String>) -> Vec<String> {
        let mut delta: Vec<String> = knowledge
            .difference(&self.last_broadcast)
            .cloned()
            .collect();
        delta.sort_unstable();
        delta
    }

    /// Total LLM usage across this agent's engines, read from the shared
    /// service's per-tenant ledger — registering a new engine enrolls it
    /// automatically, so accounting cannot silently drop a module.
    pub fn total_usage(&self) -> embodied_profiler::TokenStats {
        self.service.usage_for(TenantOwner::Agent(self.id))
    }

    /// Total fault/retry accounting across this agent's engines, read
    /// from the shared service's per-tenant ledger.
    pub fn total_resilience(&self) -> embodied_profiler::ResilienceStats {
        self.service.resilience_for(TenantOwner::Agent(self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModuleToggles;
    use embodied_llm::ModelProfile;

    fn agent_with(toggles: ModuleToggles) -> ModularAgent {
        let mut config = AgentConfig::gpt4_modular();
        config.communicator = Some(ModelProfile::gpt4_api());
        config.toggles = toggles;
        ModularAgent::new(
            0,
            "TestSystem",
            config,
            vec!["room_0".into()],
            42,
            &InferenceService::default(),
        )
    }

    #[test]
    fn toggles_gate_module_construction() {
        let full = agent_with(ModuleToggles::all_on());
        assert!(full.communication.is_some());
        assert!(full.reflection.is_some());
        assert!(full.memory.is_enabled());

        let no_comm = agent_with(ModuleToggles::without_communication());
        assert!(no_comm.communication.is_none());

        let no_refl = agent_with(ModuleToggles::without_reflection());
        assert!(no_refl.reflection.is_none());

        let no_mem = agent_with(ModuleToggles::without_memory());
        assert!(!no_mem.memory.is_enabled());
    }

    #[test]
    fn knowledge_merges_memory_and_percept() {
        let agent = agent_with(ModuleToggles::all_on());
        let known = agent.knowledge(&["apple_1".into()]);
        assert!(known.contains("room_0")); // landmark
        assert!(known.contains("apple_1")); // fresh percept
    }

    #[test]
    fn filter_drops_unknown_and_blacklisted() {
        let mut agent = agent_with(ModuleToggles::all_on());
        let known: HashSet<String> = ["apple_1".to_owned(), "room_0".to_owned()].into();
        let pick_apple = Subgoal::Pick {
            object: "apple_1".into(),
        };
        let pick_ghost = Subgoal::Pick {
            object: "ghost_9".into(),
        };
        let filtered = agent.filter_subgoals(
            vec![pick_apple.clone(), pick_ghost, Subgoal::Explore],
            &known,
            5,
        );
        assert_eq!(filtered.len(), 2); // apple + explore

        agent.blacklist_subgoal(&pick_apple, 5, 4);
        let filtered = agent.filter_subgoals(vec![pick_apple.clone()], &known, 6);
        assert!(filtered.is_empty(), "blacklisted until step 9");
        let filtered = agent.filter_subgoals(vec![pick_apple], &known, 9);
        assert_eq!(filtered.len(), 1, "blacklist expired");
    }

    #[test]
    fn knowledge_delta_tracks_broadcasts() {
        let mut agent = agent_with(ModuleToggles::all_on());
        let known: HashSet<String> = ["apple_1".to_owned(), "box_2".to_owned()].into();
        assert_eq!(agent.knowledge_delta(&known).len(), 2);
        agent.last_broadcast = known.clone();
        assert!(agent.knowledge_delta(&known).is_empty());
    }

    #[test]
    fn usage_covers_all_engines() {
        let agent = agent_with(ModuleToggles::all_on());
        assert_eq!(agent.total_usage().calls, 0);
    }
}
