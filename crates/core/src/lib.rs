//! # embodied-agents
//!
//! The subject of the reproduced paper: a framework of LLM-based embodied
//! agent systems built from six modules (sensing, planning, communication,
//! memory, reflection, execution), orchestrated in four paradigms
//! (single-agent modularized, centralized, decentralized, hybrid), and
//! instantiated as the 14-system workload suite of Table II.
//!
//! ```
//! use embodied_agents::{run_episode, workloads, RunOverrides};
//! use embodied_env::TaskDifficulty;
//!
//! let spec = workloads::find("DEPS").expect("DEPS is in the suite");
//! let overrides = RunOverrides {
//!     difficulty: Some(TaskDifficulty::Easy),
//!     ..Default::default()
//! };
//! let report = run_episode(&spec, &overrides, 42);
//! assert!(report.steps > 0);
//! println!("DEPS: {} steps, {}", report.steps, report.latency);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod agent;
pub mod config;
pub mod endtoend;
pub mod faults;
pub mod guardrail;
pub mod modules;
mod orchestrator;
pub mod prompt;
pub mod recovery;
mod runner;
mod system;
pub mod workloads;

pub use agent::ModularAgent;
pub use config::{AgentConfig, MemoryCapacity, ModuleToggles, Optimizations};
pub use embodied_llm::{FleetConfig, FleetSummary};
pub use faults::{AgentFaultProfile, ChannelProfile};
pub use guardrail::{PlanValidator, Proposal, RepairPolicy, ValidationError};
pub use orchestrator::Paradigm;
pub use recovery::RecoveryPolicy;
pub use runner::{
    episode_seed, run_episode, run_episode_traced, run_fleet, run_many, FleetReport, RunOverrides,
    EPISODE_SEED_STRIDE,
};
pub use system::EmbodiedSystem;
pub use workloads::{EnvKind, WorkloadSpec};
