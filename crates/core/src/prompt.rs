//! Prompt assembly.
//!
//! Prompts are *real strings*: system preamble, goal, current percept,
//! retrieved memory, dialogue history, and the candidate action menu. Token
//! counts therefore grow exactly the way the paper's Fig. 6 describes —
//! retrieved context and concatenated multi-agent dialogue inflate the
//! prompt step after step.

use embodied_env::Subgoal;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Builder for one module's prompt at one step.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PromptBuilder {
    sections: Vec<(String, String)>,
}

impl PromptBuilder {
    /// Starts a prompt with the workload's system preamble.
    pub fn new(preamble: &str) -> Self {
        let mut b = PromptBuilder::default();
        b.push("system", preamble);
        b
    }

    /// Appends a named section (skipped when `body` is empty).
    pub fn push(&mut self, title: &str, body: &str) -> &mut Self {
        if !body.trim().is_empty() {
            self.sections.push((title.to_owned(), body.to_owned()));
        }
        self
    }

    /// Appends the candidate-subgoal menu, formatted as a numbered list —
    /// the action-list formalization the paper describes in §II-A.
    pub fn push_candidates(&mut self, candidates: &[Subgoal]) -> &mut Self {
        if candidates.is_empty() {
            return self;
        }
        let mut body = String::new();
        for (i, sg) in candidates.iter().enumerate() {
            let _ = writeln!(body, "({i}) {sg}");
        }
        self.push("available actions", &body)
    }

    /// Renders the final prompt text.
    pub fn build(&self) -> String {
        let mut out = String::new();
        self.build_into(&mut out);
        out
    }

    /// Renders the prompt into `out`, clearing it first. Callers on the
    /// per-step hot path hold one buffer across steps so the prompt's
    /// capacity is allocated once per episode instead of once per call.
    pub fn build_into(&self, out: &mut String) {
        out.clear();
        let needed: usize = self
            .sections
            .iter()
            .map(|(title, body)| title.len() + body.len() + 4)
            .sum();
        out.reserve(needed);
        for (title, body) in &self.sections {
            let _ = write!(out, "[{title}]\n{body}\n");
        }
    }
}

/// Zero-copy sibling of [`PromptBuilder`]: renders sections straight into a
/// caller-owned `String` instead of collecting owned `(title, body)` pairs
/// first. Produces byte-identical text to building a [`PromptBuilder`] with
/// the same pushes and calling [`PromptBuilder::build`], but performs no
/// per-section allocations — the per-step hot path reuses one buffer across
/// an entire episode.
pub struct PromptWriter<'a> {
    out: &'a mut String,
}

impl<'a> PromptWriter<'a> {
    /// Clears `out` and starts a prompt with the workload's system preamble.
    pub fn new(out: &'a mut String, preamble: &str) -> Self {
        out.clear();
        let mut w = PromptWriter { out };
        w.push("system", preamble);
        w
    }

    /// Appends a named section (skipped when `body` is empty).
    pub fn push(&mut self, title: &str, body: &str) -> &mut Self {
        if !body.trim().is_empty() {
            let _ = write!(self.out, "[{title}]\n{body}\n");
        }
        self
    }

    /// Appends a named section whose body is rendered through [`fmt::Display`]
    /// straight into the buffer — no intermediate `to_string`. Produces the
    /// same bytes as `push(title, &body.to_string())`, including skipping
    /// the section when the rendered body is empty or whitespace.
    ///
    /// [`fmt::Display`]: std::fmt::Display
    pub fn push_display(&mut self, title: &str, body: &impl std::fmt::Display) -> &mut Self {
        let start = self.out.len();
        let _ = writeln!(self.out, "[{title}]");
        let body_start = self.out.len();
        let _ = write!(self.out, "{body}");
        if self.out[body_start..].trim().is_empty() {
            self.out.truncate(start);
        } else {
            self.out.push('\n');
        }
        self
    }

    /// Appends the candidate-subgoal menu, numbered like
    /// [`PromptBuilder::push_candidates`].
    pub fn push_candidates(&mut self, candidates: &[Subgoal]) -> &mut Self {
        if candidates.is_empty() {
            return self;
        }
        self.out.push_str("[available actions]\n");
        for (i, sg) in candidates.iter().enumerate() {
            let _ = writeln!(self.out, "({i}) {sg}");
        }
        self.out.push('\n');
        self
    }
}

/// Workload-specific flavor appended to the system preamble: each suite
/// member's real prompt carries its own framing (Minecraft crafting,
/// cooperative transport, kitchen orchestration, …), which is part of why
/// base prompt sizes differ across systems.
pub fn workload_flavor(workload: &str) -> &'static str {
    match workload {
        "EmbodiedGPT" => {
            "Your agent is a single robot arm in a physical kitchen rig; skills are executed by a learned low-level control policy."
        }
        "JARVIS-1" => {
            "Your agent lives in an open Minecraft world. Track your inventory, respect crafting prerequisites, and remember which biome holds which resource."
        }
        "DaDu-E" => {
            "Your agent is a wheeled household robot with a LiDAR map and a grasping arm; navigation and grasping are closed-loop."
        }
        "MP5" => {
            "Your agent perceives Minecraft through an active camera; decompose open-ended goals into situation-aware sub-objectives."
        }
        "DEPS" => {
            "Describe, explain, plan and select: diagnose failures from the symbolic game state before revising the plan."
        }
        "MindAgent" => {
            "You schedule an entire kitchen brigade: assign each cook a compatible dish stage and keep every station busy."
        }
        "OLA" => {
            "You lead an organized household team; structure who searches which room and who carries what to where."
        }
        "COHERENT" => {
            "You coordinate heterogeneous robots (quadrotor, arm, dog) via proposal-execution-feedback-adjustment."
        }
        "CMAS" => {
            "You are the central dispatcher of fixed robot arms along a conveyor of lettered zones; arms can only reach adjacent zones."
        }
        "CoELA" => {
            "You are one of several cooperative embodied agents; share what you discover, split the work, and avoid duplicated effort."
        }
        "COMBO" => {
            "Reconstruct the shared world state from egocentric views before proposing your next cooperative move."
        }
        "RoCo" => {
            "You are one robot arm in a multi-arm cell; negotiate waypoints with the other arms so trajectories do not collide."
        }
        "DMAS" => {
            "Dialogue proceeds in rounds of turn-taking; argue for the assignment you believe is globally best."
        }
        "HMAS" => {
            "A central plan primes the dialogue; give concise local feedback so the final joint plan is conflict-free."
        }
        _ => "",
    }
}

/// The standard system preamble for a workload, ~120–170 words so the base
/// prompt cost is realistic, with per-workload flavor.
pub fn system_preamble(workload: &str, role: &str) -> String {
    let flavor = workload_flavor(workload);
    format!(
        "You are the {role} module of the {workload} embodied agent system. You operate a physical agent in a partially observable environment and must pursue the long-horizon task goal efficiently. {flavor} Reason step by step about the current observation, your memory of the world, and any messages from teammates before committing to a decision. Respect the environment's physical constraints: objects must be reachable, prerequisites must be satisfied, and only one action executes per step. Prefer actions that make direct progress toward the goal; avoid repeating actions that recently failed. Answer with exactly one choice from the provided action list, followed by a brief justification of how it advances the task."
    )
}

/// A compact summarized rendering of a list of history lines (Rec. 6):
/// keeps the `keep_last` most recent verbatim and collapses the rest into a
/// single count line.
pub fn summarize_history(lines: &[String], keep_last: usize) -> String {
    if lines.len() <= keep_last {
        return lines.join("\n");
    }
    let omitted = lines.len() - keep_last;
    let mut out = format!("[{omitted} earlier entries summarized: routine progress]\n");
    out.push_str(&lines[lines.len() - keep_last..].join("\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use embodied_llm::Tokenizer;

    #[test]
    fn sections_render_in_order() {
        let mut b = PromptBuilder::new("be helpful");
        b.push("goal", "deliver things")
            .push("memory", "saw an apple");
        let text = b.build();
        let goal_at = text.find("[goal]").unwrap();
        let mem_at = text.find("[memory]").unwrap();
        assert!(goal_at < mem_at);
        assert!(text.starts_with("[system]"));
    }

    #[test]
    fn build_into_reuses_buffer_and_matches_build() {
        let mut b = PromptBuilder::new("be helpful");
        b.push("goal", "deliver things");
        let mut buf = String::from("stale content from the previous step");
        b.build_into(&mut buf);
        assert_eq!(buf, b.build());
        // A second render into the same buffer is identical too.
        let before_ptr = buf.as_ptr();
        b.build_into(&mut buf);
        assert_eq!(buf, b.build());
        assert_eq!(before_ptr, buf.as_ptr(), "capacity should be reused");
    }

    #[test]
    fn empty_sections_skipped() {
        let mut b = PromptBuilder::new("x");
        b.push("empty", " ");
        assert!(!b.build().contains("[empty]"));
    }

    #[test]
    fn writer_matches_builder_byte_for_byte() {
        let candidates = [
            Subgoal::Explore,
            Subgoal::Pick {
                object: "apple_1".into(),
            },
        ];
        let mut b = PromptBuilder::new("be helpful");
        b.push("goal", "deliver things")
            .push("empty", "  ")
            .push("memory", "saw an apple")
            .push_candidates(&candidates);
        let mut buf = String::from("stale");
        PromptWriter::new(&mut buf, "be helpful")
            .push("goal", "deliver things")
            .push("empty", "  ")
            .push("memory", "saw an apple")
            .push_candidates(&candidates);
        assert_eq!(buf, b.build());
        // Empty candidate menus are skipped by both paths.
        let mut b = PromptBuilder::new("x");
        b.push_candidates(&[]);
        PromptWriter::new(&mut buf, "x").push_candidates(&[]);
        assert_eq!(buf, b.build());
    }

    #[test]
    fn candidates_are_numbered() {
        let mut b = PromptBuilder::new("x");
        b.push_candidates(&[
            Subgoal::Explore,
            Subgoal::Pick {
                object: "apple_1".into(),
            },
        ]);
        let text = b.build();
        assert!(text.contains("(0) explore"));
        assert!(text.contains("(1) pick up apple_1"));
    }

    #[test]
    fn preamble_costs_realistic_tokens() {
        let tok = Tokenizer::default();
        let n = tok.count(&system_preamble("CoELA", "planning"));
        assert!(
            (100..300).contains(&n),
            "preamble should cost ~120-250 tokens, got {n}"
        );
    }

    #[test]
    fn every_suite_member_has_flavor() {
        for name in [
            "EmbodiedGPT",
            "JARVIS-1",
            "DaDu-E",
            "MP5",
            "DEPS",
            "MindAgent",
            "OLA",
            "COHERENT",
            "CMAS",
            "CoELA",
            "COMBO",
            "RoCo",
            "DMAS",
            "HMAS",
        ] {
            assert!(
                !workload_flavor(name).is_empty(),
                "{name} missing prompt flavor"
            );
        }
        assert!(workload_flavor("SomethingElse").is_empty());
    }

    #[test]
    fn flavors_differentiate_prompts() {
        let a = system_preamble("JARVIS-1", "planning");
        let b = system_preamble("CoELA", "planning");
        assert_ne!(a, b);
        assert!(a.contains("Minecraft"));
        assert!(b.contains("cooperative"));
    }

    #[test]
    fn summarization_collapses_old_lines() {
        let lines: Vec<String> = (0..20).map(|i| format!("step {i}: moved")).collect();
        let full = lines.join("\n");
        let summary = summarize_history(&lines, 4);
        assert!(summary.len() < full.len());
        assert!(summary.contains("16 earlier entries"));
        assert!(summary.contains("step 19"));
        assert!(!summary.contains("step 3:"));
    }

    #[test]
    fn summarization_noop_when_short() {
        let lines = vec!["a".to_owned(), "b".to_owned()];
        assert_eq!(summarize_history(&lines, 5), "a\nb");
    }
}
