//! Integration tests for the agent/channel fault layer: crash schedules
//! replay bit-identically, coordinator failover is deterministic, and
//! partitioned teams heal and still converge on every multi-agent workload.

use embodied_suite::prelude::*;

/// A representative fault load: agent crashes/stalls with failover enabled
/// plus a uniformly lossy channel.
fn faulted(agents: usize) -> RunOverrides {
    RunOverrides {
        difficulty: Some(TaskDifficulty::Easy),
        num_agents: Some(agents),
        agent_faults: Some(AgentFaultProfile::uniform_with_failover(0.05)),
        channel: Some(ChannelProfile::lossy(0.10)),
        ..Default::default()
    }
}

#[test]
fn crash_schedules_replay_bit_identically() {
    // One workload per paradigm; the whole report (every latency, token,
    // stat and step record) must match across replays of the same seed.
    for (name, agents) in [("DEPS", 1), ("MindAgent", 4), ("CoELA", 4), ("RoCo", 4)] {
        let spec = workloads::find(name).expect("suite member");
        let overrides = faulted(agents);
        let a = run_episode(&spec, &overrides, 97);
        let b = run_episode(&spec, &overrides, 97);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{name}: faulted episode diverged across replays"
        );
        assert!(
            !a.agent_faults.is_quiet() || !a.channel.is_quiet(),
            "{name}: fault load injected nothing — the replay check is vacuous"
        );
    }
}

#[test]
fn coordinator_failover_is_deterministic() {
    let spec = workloads::find("MindAgent").expect("suite member");
    let overrides = RunOverrides {
        difficulty: Some(TaskDifficulty::Medium),
        num_agents: Some(4),
        agent_faults: Some(AgentFaultProfile::uniform_with_failover(0.10)),
        ..Default::default()
    };
    let reports: Vec<EpisodeReport> = (0..3).map(|_| run_episode(&spec, &overrides, 11)).collect();
    assert!(
        reports[0].agent_faults.failovers > 0,
        "seed 11 must exercise at least one failover for this test to bite"
    );
    // Same promotion, same resync cost, same everything — three runs of the
    // same seed must be byte-identical, so the elected coordinator (and
    // every decision taken after the election) is a pure function of the
    // seed.
    for r in &reports[1..] {
        assert_eq!(format!("{:?}", reports[0]), format!("{r:?}"));
    }
}

#[test]
fn failover_recovers_success_lost_to_coordinator_crashes() {
    let spec = workloads::find("MindAgent").expect("suite member");
    let run = |failover: bool| -> (f64, u64) {
        let profile = if failover {
            AgentFaultProfile::uniform_with_failover(0.05)
        } else {
            AgentFaultProfile::uniform(0.05)
        };
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Medium),
            num_agents: Some(4),
            agent_faults: Some(profile),
            ..Default::default()
        };
        let mut successes = 0usize;
        let mut down_steps = 0u64;
        let n = 8;
        for seed in 0..n {
            let r = run_episode(&spec, &overrides, seed * 7919 + 1);
            successes += usize::from(r.outcome.is_success());
            down_steps += r.agent_faults.coordinator_down_steps;
        }
        (successes as f64 / n as f64, down_steps)
    };
    let (without, down_without) = run(false);
    let (with, down_with) = run(true);
    assert!(
        with > without,
        "failover should recover success under coordinator crashes \
         (without: {without:.2}, with: {with:.2})"
    );
    assert!(
        down_with < down_without,
        "failover should shorten headless stretches \
         (without: {down_without} steps, with: {down_with} steps)"
    );
}

#[test]
fn partitions_heal_and_teams_converge() {
    // A partition-heavy channel on every multi-agent workload: partitions
    // must actually open (the test is vacuous otherwise), every episode
    // must terminate, and the team must still solve Easy tasks at least
    // some of the time — a partition is a delay, not a death sentence.
    let channel = ChannelProfile {
        partition: 0.30,
        partition_steps: 2,
        ..ChannelProfile::none()
    };
    for spec in workloads::registry() {
        if spec.paradigm == Paradigm::SingleModular {
            continue;
        }
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            num_agents: Some(4),
            channel: Some(channel),
            ..Default::default()
        };
        let mut partitions = 0u64;
        let mut successes = 0usize;
        for seed in [5, 23, 71] {
            let report = run_episode(&spec, &overrides, seed);
            assert!(report.steps > 0, "{}: episode did not run", spec.name);
            partitions += report.channel.partitions;
            successes += usize::from(report.outcome.is_success());
        }
        assert!(
            partitions > 0,
            "{}: no partition ever opened at rate 0.30",
            spec.name
        );
        assert!(
            successes >= 1,
            "{}: partitioned team never converged on an Easy task",
            spec.name
        );
    }
}
