//! Property-based tests over the substrates' core invariants.

use embodied_suite::exec::{astar, Cell, DenseGrid, MlpPolicy, Point, Workspace};
use embodied_suite::llm::{
    inference_latency, InferenceOpts, LlmEngine, LlmRequest, ModelProfile, Purpose, QualityModel,
    Tokenizer,
};
use embodied_suite::profiler::{LatencyBreakdown, ModuleKind, SimDuration};
use proptest::prelude::*;

proptest! {
    /// Token counts are additive over whitespace concatenation and zero only
    /// for whitespace.
    #[test]
    fn tokenizer_additive(a in "[a-z]{1,12}( [a-z]{1,12}){0,8}", b in "[a-z]{1,12}( [a-z]{1,12}){0,8}") {
        let tok = Tokenizer::default();
        prop_assert_eq!(
            tok.count(&format!("{a} {b}")),
            tok.count(&a) + tok.count(&b)
        );
        prop_assert!(tok.count(&a) > 0);
    }

    /// Truncation never exceeds the budget and is idempotent.
    #[test]
    fn tokenizer_truncation_respects_budget(
        text in "[a-z]{1,10}( [a-z]{1,10}){0,40}",
        budget in 1u64..30
    ) {
        let tok = Tokenizer::default();
        let cut = tok.truncate_to(&text, budget);
        prop_assert!(tok.count(&cut) <= budget);
        let recut = tok.truncate_to(&cut, budget);
        prop_assert_eq!(recut, cut);
    }

    /// SimDuration addition is commutative and monotone.
    #[test]
    fn sim_duration_algebra(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let (da, db) = (SimDuration::from_micros(a), SimDuration::from_micros(b));
        prop_assert_eq!(da + db, db + da);
        prop_assert!(da + db >= da);
        prop_assert_eq!((da + db).saturating_sub(db), da);
    }

    /// Latency breakdown fractions always form a distribution.
    #[test]
    fn breakdown_is_distribution(parts in proptest::collection::vec(0u64..10_000, 6)) {
        let mut b = LatencyBreakdown::new();
        for (module, micros) in ModuleKind::ALL.into_iter().zip(&parts) {
            b.add(module, SimDuration::from_micros(*micros));
        }
        let sum: f64 = ModuleKind::ALL.into_iter().map(|m| b.fraction(m)).sum();
        if b.total().is_zero() {
            prop_assert_eq!(sum, 0.0);
        } else {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
        prop_assert!((0.0..=1.0).contains(&b.llm_fraction()));
    }

    /// Inference latency is monotone in both prompt and output tokens for
    /// every model profile.
    #[test]
    fn latency_monotone(prompt in 1u64..6_000, output in 1u64..600) {
        for profile in [ModelProfile::gpt4_api(), ModelProfile::llama3_8b(), ModelProfile::llava_7b()] {
            let base = inference_latency(&profile, prompt, output, InferenceOpts::default());
            let more_prompt = inference_latency(&profile, prompt + 500, output, InferenceOpts::default());
            let more_output = inference_latency(&profile, prompt, output + 100, InferenceOpts::default());
            prop_assert!(more_prompt >= base);
            prop_assert!(more_output > base);
        }
    }

    /// Decision quality is always a probability and never increases with
    /// prompt bloat or difficulty.
    #[test]
    fn quality_bounded_and_monotone(prompt in 0u64..40_000, difficulty in 0.0f64..1.0) {
        let m = QualityModel::default();
        let p = ModelProfile::gpt4_api();
        let q = m.decision_quality(&p, prompt, difficulty, InferenceOpts::default());
        prop_assert!((0.0..=1.0).contains(&q));
        let q_bloated = m.decision_quality(&p, prompt + 5_000, difficulty, InferenceOpts::default());
        prop_assert!(q_bloated <= q + 1e-12);
        let q_harder = m.decision_quality(&p, prompt, (difficulty + 0.3).min(1.0), InferenceOpts::default());
        prop_assert!(q_harder <= q + 1e-12);
    }

    /// A* paths, when they exist, are connected, passable, start/end
    /// correctly, and are no longer than the 2·(w+h) trivial bound on an
    /// open grid.
    #[test]
    fn astar_path_invariants(
        w in 5i32..20, h in 5i32..20,
        sx in 0i32..5, sy in 0i32..5,
    ) {
        let grid = DenseGrid::open(w, h);
        let start = Cell::new(sx.min(w - 1), sy.min(h - 1));
        let goal = Cell::new(w - 1, h - 1);
        let plan = astar(&grid, start, goal).expect("open grid is connected");
        prop_assert_eq!(*plan.path.first().unwrap(), start);
        prop_assert_eq!(*plan.path.last().unwrap(), goal);
        for pair in plan.path.windows(2) {
            prop_assert_eq!(pair[0].manhattan(pair[1]), 1);
        }
        // On an open grid A* is exactly Manhattan-optimal.
        prop_assert_eq!(plan.length() as u32, start.manhattan(goal));
    }

    /// Workspace freeness is consistent with segment checks: a segment
    /// entirely in free space has free endpoints.
    #[test]
    fn workspace_segments(ax in 0.1f64..3.9, ay in 0.1f64..3.9, bx in 0.1f64..3.9, by in 0.1f64..3.9) {
        let ws = Workspace::new(4.0, 4.0).with_obstacle(Point::new(2.0, 2.0), 0.5);
        let (a, b) = (Point::new(ax, ay), Point::new(bx, by));
        if ws.segment_free(a, b) {
            prop_assert!(ws.free(a));
            prop_assert!(ws.free(b));
        }
    }

    /// The MLP policy is a pure function: same features, same action; and
    /// actions stay in range.
    #[test]
    fn mlp_pure_and_bounded(seed in 0u64..50, feats in proptest::collection::vec(-2.0f64..2.0, 10)) {
        let p = MlpPolicy::new(10, &[16], 5, seed);
        let a1 = p.act(&feats);
        let a2 = p.act(&feats);
        prop_assert_eq!(a1, a2);
        prop_assert!(a1 < 5);
    }

    /// Engine responses respect the context window and quality bounds for
    /// arbitrary prompt sizes.
    #[test]
    fn engine_respects_window(words in 1usize..4_000, seed in 0u64..20) {
        let mut engine = LlmEngine::new(ModelProfile::llama_13b(), seed); // 4k window
        let prompt = "word ".repeat(words);
        let resp = engine
            .infer(LlmRequest::new(Purpose::Planning, &prompt, 100))
            .unwrap();
        prop_assert!(resp.prompt_tokens <= engine.profile().context_window);
        prop_assert!((0.02..=0.99).contains(&resp.quality));
        prop_assert!(resp.output_tokens >= 1);
    }
}
