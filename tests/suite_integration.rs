//! Cross-crate integration: every suite member runs end-to-end, reports are
//! internally consistent, and episodes replay deterministically.

use embodied_suite::prelude::*;

fn easy() -> RunOverrides {
    RunOverrides {
        difficulty: Some(TaskDifficulty::Easy),
        ..Default::default()
    }
}

#[test]
fn all_fourteen_workloads_run_end_to_end() {
    for spec in workloads::registry() {
        let report = run_episode(&spec, &easy(), 5);
        assert!(report.steps > 0, "{}: no steps ran", spec.name);
        assert!(
            report.latency.as_secs_f64() > 1.0,
            "{}: implausibly fast episode",
            spec.name
        );
        assert!(report.tokens.calls > 0, "{}: no LLM calls", spec.name);
        assert_eq!(report.workload, spec.name);
    }
}

#[test]
fn reports_are_internally_consistent() {
    let spec = workloads::find("CoELA").expect("suite member");
    let report = run_episode(&spec, &easy(), 11);
    // Breakdown total equals the trace-elapsed episode latency.
    let breakdown_total = report.breakdown.total();
    assert_eq!(
        breakdown_total, report.latency,
        "all simulated time must be attributed to a module"
    );
    // Step records cover every step and sum close to the total.
    assert_eq!(report.step_records.len(), report.steps);
    let steps_sum: SimDuration = report.step_records.iter().map(|r| r.latency).sum();
    assert_eq!(steps_sum, report.latency);
    // Message utility is a fraction.
    let util = report.messages.utility();
    assert!((0.0..=1.0).contains(&util));
}

#[test]
fn episodes_replay_bit_identically() {
    for name in ["DEPS", "MindAgent", "CoELA", "HMAS"] {
        let spec = workloads::find(name).expect("suite member");
        let a = run_episode(&spec, &easy(), 77);
        let b = run_episode(&spec, &easy(), 77);
        assert_eq!(a.steps, b.steps, "{name}");
        assert_eq!(a.latency, b.latency, "{name}");
        assert_eq!(a.tokens, b.tokens, "{name}");
        assert_eq!(a.outcome.is_success(), b.outcome.is_success(), "{name}");
    }
}

#[test]
fn different_seeds_differ() {
    let spec = workloads::find("CoELA").expect("suite member");
    let a = run_episode(&spec, &easy(), 1);
    let b = run_episode(&spec, &easy(), 2);
    assert!(
        a.latency != b.latency || a.steps != b.steps || a.tokens != b.tokens,
        "distinct seeds should not produce identical episodes"
    );
}

#[test]
fn multi_agent_override_scales_team() {
    let spec = workloads::find("COMBO").expect("suite member");
    let overrides = RunOverrides {
        difficulty: Some(TaskDifficulty::Easy),
        num_agents: Some(4),
        ..Default::default()
    };
    let report = run_episode(&spec, &overrides, 3);
    assert_eq!(report.agents, 4);
}

#[test]
fn single_agent_systems_ignore_team_override() {
    let spec = workloads::find("JARVIS-1").expect("suite member");
    let overrides = RunOverrides {
        difficulty: Some(TaskDifficulty::Easy),
        num_agents: Some(4),
        ..Default::default()
    };
    let report = run_episode(&spec, &overrides, 3);
    assert_eq!(report.agents, 1);
}

#[test]
fn gpt4_workloads_report_api_cost_and_local_ones_do_not() {
    let deps = run_episode(&workloads::find("DEPS").unwrap(), &easy(), 5);
    assert!(deps.tokens.cost_usd > 0.0, "GPT-4 planning costs dollars");
    let combo = run_episode(&workloads::find("COMBO").unwrap(), &easy(), 5);
    assert_eq!(combo.tokens.cost_usd, 0.0, "local LLaVA costs nothing");
}

#[test]
fn execution_disabled_is_catastrophic_across_paradigms() {
    let mut failures = 0;
    let mut total = 0;
    for name in ["JARVIS-1", "CoELA", "MindAgent"] {
        let spec = workloads::find(name).unwrap();
        for seed in 0..3 {
            let overrides = RunOverrides {
                difficulty: Some(TaskDifficulty::Easy),
                toggles: Some(ModuleToggles::without_execution()),
                ..Default::default()
            };
            let report = run_episode(&spec, &overrides, seed);
            total += 1;
            if !report.outcome.is_success() {
                failures += 1;
            }
        }
    }
    assert!(
        failures * 3 >= total * 2,
        "execution-off should fail in at least ~2/3 of runs ({failures}/{total})"
    );
}

#[test]
fn heterogeneous_teams_run() {
    use embodied_suite::agents::{EmbodiedSystem, Paradigm};
    use embodied_suite::llm::ModelProfile;

    let spec = workloads::find("CoELA").expect("suite member");
    let env = spec.build_env(TaskDifficulty::Easy, 2, 9);
    let mut gpt4 = spec.config.clone();
    gpt4.planner = ModelProfile::gpt4_api();
    let mut llama = spec.config.clone();
    llama.planner = ModelProfile::llama3_8b();

    let mut system = EmbodiedSystem::with_agent_configs(
        "CoELA-hetero",
        env,
        &[gpt4, llama],
        Paradigm::Decentralized,
        9,
    );
    let report = system.run();
    assert_eq!(report.agents, 2);
    assert!(report.steps > 0);
    // Local half of the team incurs zero cost; API half bills dollars.
    assert!(report.tokens.cost_usd > 0.0);
}

#[test]
#[should_panic(expected = "one config per environment agent")]
fn heterogeneous_config_count_must_match() {
    use embodied_suite::agents::{AgentConfig, EmbodiedSystem, Paradigm};
    let spec = workloads::find("CoELA").expect("suite member");
    let env = spec.build_env(TaskDifficulty::Easy, 3, 9);
    let _ = EmbodiedSystem::with_agent_configs(
        "bad",
        env,
        &[AgentConfig::gpt4_modular()],
        Paradigm::Decentralized,
        9,
    );
}

#[test]
fn aggregates_roll_up_reports() {
    let spec = workloads::find("DEPS").expect("suite member");
    let agg = run_many(&spec, &easy(), 4, 0, "DEPS-easy");
    assert_eq!(agg.episodes, 4);
    assert!(agg.mean_steps > 0.0);
    assert!((0.0..=1.0).contains(&agg.success_rate));
    assert!(agg.breakdown.llm_fraction() > 0.3);
}
