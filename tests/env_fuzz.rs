//! Fuzz-style property tests: every environment must tolerate *arbitrary*
//! subgoals — the planner's wrong branch can emit anything from the shared
//! vocabulary — without panicking, and must keep its invariants (progress
//! in [0,1], monotone completion, bounded time per call).

use embodied_suite::env::{
    AlfWorldEnv, BoxVariant, BoxWorldEnv, CraftEnv, CuisineEnv, Environment, HouseholdEnv,
    KitchenEnv, LowLevel, ManipulationEnv, Subgoal, TaskDifficulty, TransportEnv,
};
use embodied_suite::exec::Cell;
use proptest::prelude::*;

/// A strategy generating arbitrary (often invalid) subgoals.
fn any_subgoal() -> impl Strategy<Value = Subgoal> {
    fn name() -> impl Strategy<Value = String> {
        proptest::string::string_regex("[a-z]{1,8}(_[0-9]{1,2})?").expect("valid regex")
    }
    prop_oneof![
        (name(), -5i32..40, -5i32..40).prop_map(|(target, x, y)| Subgoal::GoTo {
            target,
            cell: Cell::new(x, y),
        }),
        name().prop_map(|object| Subgoal::Pick { object }),
        (name(), name()).prop_map(|(object, dest)| Subgoal::Place { object, dest }),
        name().prop_map(|container| Subgoal::Open { container }),
        name().prop_map(|resource| Subgoal::Gather { resource }),
        name().prop_map(|item| Subgoal::Craft { item }),
        (name(), name()).prop_map(|(dish, stage)| Subgoal::Cook { dish, stage }),
        name().prop_map(|dish| Subgoal::Serve { dish }),
        (name(), name()).prop_map(|(box_name, dest)| Subgoal::MoveBox { box_name, dest }),
        (name(), 0usize..6)
            .prop_map(|(box_name, partner)| Subgoal::LiftTogether { box_name, partner }),
        (name(), -2.0f64..8.0, -2.0f64..8.0)
            .prop_map(|(object, x, y)| Subgoal::ArmMove { object, to: (x, y) }),
        name().prop_map(|name| Subgoal::Skill { name }),
        Just(Subgoal::Explore),
        Just(Subgoal::Wait),
    ]
}

fn envs(seed: u64) -> Vec<Box<dyn Environment>> {
    vec![
        Box::new(TransportEnv::new(TaskDifficulty::Medium, 2, seed)),
        Box::new(HouseholdEnv::new(TaskDifficulty::Medium, 2, seed)),
        Box::new(CuisineEnv::new(TaskDifficulty::Medium, 2, seed)),
        Box::new(BoxWorldEnv::new(
            BoxVariant::BoxLift,
            TaskDifficulty::Medium,
            2,
            seed,
        )),
        Box::new(CraftEnv::new(TaskDifficulty::Medium, 1, seed)),
        Box::new(ManipulationEnv::new(TaskDifficulty::Medium, 2, seed)),
        Box::new(KitchenEnv::new(TaskDifficulty::Medium, 1, seed)),
        Box::new(AlfWorldEnv::new(TaskDifficulty::Medium, 1, seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No environment panics, and invariants hold, under arbitrary action
    /// sequences from arbitrary agents.
    #[test]
    fn environments_survive_arbitrary_subgoals(
        seed in 0u64..50,
        subgoals in proptest::collection::vec(any_subgoal(), 1..25),
    ) {
        for mut env in envs(seed) {
            let mut low = LowLevel::controller(seed);
            let mut prev_progress = env.progress();
            prop_assert!((0.0..=1.0).contains(&prev_progress));
            for (i, sg) in subgoals.iter().enumerate() {
                let agent = i % env.num_agents();
                let outcome = env.execute(agent, sg, &mut low);
                // Time is finite and non-negative by construction; sanity
                // cap: no single subgoal takes more than 10 simulated min.
                prop_assert!(
                    outcome.total_time().as_secs_f64() < 600.0,
                    "{}: {sg} took {}",
                    env.name(),
                    outcome.total_time()
                );
                let progress = env.progress();
                prop_assert!((0.0..=1.0).contains(&progress), "{}", env.name());
                prop_assert!(
                    progress >= prev_progress - 1e-9,
                    "{}: progress regressed {prev_progress} -> {progress}",
                    env.name()
                );
                prev_progress = progress;
                // Observations stay well-formed for every agent.
                for a in 0..env.num_agents() {
                    let obs = env.observe(a);
                    let _ = obs.to_prompt_text();
                }
            }
        }
    }

    /// Oracle subgoals are always drawn from the candidate menu's entity
    /// vocabulary and never reference unknown entities.
    #[test]
    fn oracle_subgoals_are_well_formed(seed in 0u64..30) {
        for env in envs(seed) {
            for agent in 0..env.num_agents() {
                let landmarks = env.landmarks();
                let visible: Vec<String> = env
                    .observe(agent)
                    .visible
                    .iter()
                    .map(|e| e.name.clone())
                    .collect();
                for sg in env.oracle_subgoals(agent) {
                    // The oracle must be *executable knowledge*: everything
                    // it references is either a landmark, currently visible
                    // to some agent, or discoverable state the env owns.
                    prop_assert!(
                        !sg.to_string().is_empty(),
                        "{}: unprintable oracle subgoal",
                        env.name()
                    );
                    let _ = (landmarks.len(), visible.len());
                }
            }
        }
    }
}

/// Completion is terminal: once an environment reports complete, it stays
/// complete under further (arbitrary) actions.
#[test]
fn completion_is_terminal() {
    // Drive kitchen (fast to finish) to completion with its oracle…
    let mut env = KitchenEnv::new(TaskDifficulty::Easy, 1, 3);
    let mut low = LowLevel::controller(5);
    let mut guard = 0;
    while !env.is_complete() && guard < 200 {
        let sg = env.oracle_subgoals(0)[0].clone();
        env.execute(0, &sg, &mut low);
        guard += 1;
    }
    assert!(env.is_complete());
    // …then throw junk at it.
    for sg in [
        Subgoal::Explore,
        Subgoal::Skill {
            name: "open_microwave".into(),
        },
        Subgoal::Wait,
    ] {
        env.execute(0, &sg, &mut low);
        assert!(env.is_complete(), "completion must be terminal");
        assert_eq!(env.progress(), 1.0);
    }
}
