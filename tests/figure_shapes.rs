//! Statistical shape tests: the paper's headline findings must hold in the
//! simulation (who wins, direction of effects, rough factors) — these are
//! the claims the figure binaries print, verified cheaply in CI.

use embodied_suite::prelude::*;

const EPISODES: usize = 5;

fn agg(name: &str, overrides: &RunOverrides, label: &str) -> Aggregate {
    let spec = workloads::find(name).expect("suite member");
    run_many(&spec, overrides, EPISODES, 42, label)
}

fn easy() -> RunOverrides {
    RunOverrides {
        difficulty: Some(TaskDifficulty::Easy),
        ..Default::default()
    }
}

/// Fig. 2a: LLM-backed modules dominate latency on LLM-planning workloads.
#[test]
fn llm_modules_dominate_latency() {
    for name in ["JARVIS-1", "DEPS", "CoELA"] {
        let a = agg(name, &RunOverrides::default(), name);
        let llm = a.breakdown.llm_fraction();
        assert!(
            llm > 0.5,
            "{name}: LLM share {llm:.2} should dominate (paper ≈ 0.70)"
        );
    }
}

/// Fig. 2a: execution is a notable bottleneck for RoCo and DaDu-E.
#[test]
fn execution_heavy_workloads_show_it() {
    for name in ["RoCo", "DaDu-E"] {
        let a = agg(name, &RunOverrides::default(), name);
        let exec = a.module_fraction(ModuleKind::Execution);
        assert!(
            exec > 0.2,
            "{name}: execution share {exec:.2} should be substantial (paper 0.49/0.38)"
        );
    }
}

/// Fig. 2b: per-step latency sits in the paper's 5–40 s band.
#[test]
fn per_step_latency_band() {
    for name in ["JARVIS-1", "MindAgent", "CoELA", "RoCo"] {
        let a = agg(name, &RunOverrides::default(), name);
        let secs = a.mean_step_latency.as_secs_f64();
        assert!(
            (4.0..45.0).contains(&secs),
            "{name}: step latency {secs:.1}s outside the plausible band"
        );
    }
}

/// Fig. 3: disabling memory hurts success; disabling communication does not
/// change it much.
#[test]
fn memory_matters_communication_barely() {
    let base = agg("CoELA", &RunOverrides::default(), "base");
    let no_mem = agg(
        "CoELA",
        &RunOverrides {
            toggles: Some(ModuleToggles::without_memory()),
            ..Default::default()
        },
        "no-mem",
    );
    let no_comm = agg(
        "CoELA",
        &RunOverrides {
            toggles: Some(ModuleToggles::without_communication()),
            ..Default::default()
        },
        "no-comm",
    );
    assert!(
        base.success_rate - no_mem.success_rate > 0.15,
        "memory off should cost success ({:.2} -> {:.2})",
        base.success_rate,
        no_mem.success_rate
    );
    assert!(
        (base.success_rate - no_comm.success_rate).abs() <= 0.45,
        "communication off should not collapse success"
    );
}

/// Fig. 4: the local 8B planner loses success and gains end-to-end latency.
#[test]
fn local_model_tradeoff() {
    let gpt4 = agg("DEPS", &RunOverrides::default(), "gpt4");
    let llama = agg(
        "DEPS",
        &RunOverrides {
            planner: Some(ModelProfile::llama3_8b()),
            ..Default::default()
        },
        "llama",
    );
    assert!(
        gpt4.success_rate > llama.success_rate + 0.2,
        "GPT-4 {:.2} vs Llama {:.2}",
        gpt4.success_rate,
        llama.success_rate
    );
    assert!(
        llama.mean_latency > gpt4.mean_latency,
        "end-to-end should lengthen despite faster inference ({} vs {})",
        llama.mean_latency,
        gpt4.mean_latency
    );
}

/// Fig. 5: bigger memory windows help on memory-sensitive tasks; retrieval
/// cost grows with stored history.
#[test]
fn memory_capacity_tradeoff() {
    let none = agg(
        "DaDu-E",
        &RunOverrides {
            memory_capacity: Some(MemoryCapacity::None),
            ..Default::default()
        },
        "none",
    );
    let window = agg(
        "DaDu-E",
        &RunOverrides {
            memory_capacity: Some(MemoryCapacity::Steps(8)),
            ..Default::default()
        },
        "window",
    );
    assert!(
        window.success_rate > none.success_rate,
        "an 8-step window must beat no memory on transport ({:.2} vs {:.2})",
        window.success_rate,
        none.success_rate
    );
    let full = agg(
        "DaDu-E",
        &RunOverrides {
            memory_capacity: Some(MemoryCapacity::Full),
            ..Default::default()
        },
        "full",
    );
    let per_step_retrieval = |a: &Aggregate| {
        a.breakdown.module(ModuleKind::Memory).as_secs_f64() / (a.mean_steps * a.episodes as f64)
    };
    assert!(
        per_step_retrieval(&full) > per_step_retrieval(&none),
        "full history must cost more retrieval time per step"
    );
}

/// Fig. 6: prompts grow over the course of an episode under full memory.
#[test]
fn prompt_tokens_grow_over_time() {
    let spec = workloads::find("CoELA").expect("suite member");
    let overrides = RunOverrides {
        memory_capacity: Some(MemoryCapacity::Full),
        ..Default::default()
    };
    let report = run_episode(&spec, &overrides, 5);
    let records = &report.step_records;
    assert!(records.len() >= 6, "need a long enough episode");
    let early: u64 = records[..3].iter().map(|r| r.max_prompt_tokens).sum();
    let late: u64 = records[records.len() - 3..]
        .iter()
        .map(|r| r.max_prompt_tokens)
        .sum();
    assert!(
        late as f64 > early as f64 * 1.3,
        "late prompts ({late}) should clearly exceed early prompts ({early})"
    );
}

/// Fig. 7: decentralized tokens scale super-linearly with the team, and
/// centralized latency scales far more gently than decentralized.
#[test]
fn scalability_contrast() {
    let at = |name: &str, agents: usize| {
        agg(
            name,
            &RunOverrides {
                difficulty: Some(TaskDifficulty::Easy),
                num_agents: Some(agents),
                ..Default::default()
            },
            name,
        )
    };
    let coela2 = at("CoELA", 2);
    let coela6 = at("CoELA", 6);
    let tokens_growth = coela6.tokens_per_episode() / coela2.tokens_per_episode();
    assert!(
        tokens_growth > 3.0,
        "decentralized token growth 2→6 agents was only ×{tokens_growth:.1}"
    );

    let mind2 = at("MindAgent", 2);
    let mind6 = at("MindAgent", 6);
    let central_latency_growth =
        mind6.mean_latency.as_secs_f64() / mind2.mean_latency.as_secs_f64();
    let decentral_latency_growth =
        coela6.mean_latency.as_secs_f64() / coela2.mean_latency.as_secs_f64();
    assert!(
        decentral_latency_growth > central_latency_growth,
        "decentralized latency must scale worse (×{decentral_latency_growth:.2} vs ×{central_latency_growth:.2})"
    );
}

/// Rec. 7: multi-step plans cut LLM calls without hurting success.
#[test]
fn multi_step_execution_cuts_llm_calls() {
    let base = agg("JARVIS-1", &RunOverrides::default(), "h1");
    let multi = agg(
        "JARVIS-1",
        &RunOverrides {
            opts: Some(Optimizations {
                plan_horizon: 3,
                ..Default::default()
            }),
            ..Default::default()
        },
        "h3",
    );
    assert!(
        multi.calls_per_episode() < base.calls_per_episode() * 0.7,
        "plan horizon 3 should cut calls by >30% ({:.1} vs {:.1})",
        multi.calls_per_episode(),
        base.calls_per_episode()
    );
    assert!(multi.success_rate + 0.15 >= base.success_rate);
}

/// Rec. 8: gating messages on plan need slashes message volume and raises
/// the utility of what remains.
#[test]
fn plan_then_communicate_cuts_messages() {
    let base = agg("CoELA", &RunOverrides::default(), "chatty");
    let gated = agg(
        "CoELA",
        &RunOverrides {
            opts: Some(Optimizations {
                plan_then_communicate: true,
                ..Default::default()
            }),
            ..Default::default()
        },
        "gated",
    );
    assert!(
        (gated.messages.generated as f64) < base.messages.generated as f64 * 0.5,
        "gating should halve messages ({} vs {})",
        gated.messages.generated,
        base.messages.generated
    );
    assert!(gated.messages.utility() > base.messages.utility());
    assert!(gated.success_rate + 0.15 >= base.success_rate);
}

/// The skill library pays off: repeated skill kinds accumulate familiarity
/// that nudges later planning quality (action memory, §II-A).
#[test]
fn skill_library_records_practiced_patterns() {
    use embodied_suite::agents::modules::{MemoryModule, RecordKind};
    let mut m = MemoryModule::new(
        true,
        MemoryCapacity::Steps(8),
        false,
        false,
        vec!["room_0".into()],
    );
    m.store(RecordKind::Action, "picked something", Vec::new());
    for _ in 0..6 {
        m.record_skill("pick");
    }
    assert!(m.skill_bonus("pick") > 0.0);
    assert!(m.skill_bonus("pick") <= 0.04);
}

/// In-text §V-D: most of CoELA's generated messages are not useful.
#[test]
fn most_messages_are_redundant() {
    let a = agg("CoELA", &easy(), "coela");
    let utility = a.messages.utility();
    assert!(
        utility < 0.5,
        "message utility {utility:.2} should be well below half (paper ≈ 0.2)"
    );
    assert!(a.messages.generated > 0);
}
