//! Property-based tests over the guardrail pipeline: the validator is
//! sound (it never accepts an action the environment would reject as
//! unafforded), and the repair loop terminates within its attempt budget
//! for every corruption schedule.

use embodied_agents::guardrail::{guard_decision, materialize, PlanValidator, Proposal};
use embodied_agents::{run_episode, workloads, RepairPolicy, RunOverrides};
use embodied_env::{AffordanceSet, Subgoal, TaskDifficulty};
use embodied_llm::{
    InferenceOpts, LlmEngine, ModelProfile, ResilientEngine, RetryPolicy, SemanticFaultKind,
    SemanticFaultProfile, SemanticFlaw,
};
use embodied_profiler::RepairStats;
use proptest::prelude::*;

/// Entity pool the generators draw from — mixes plain ASCII names with
/// multi-byte ones so validator feedback slicing is exercised too.
const ENTITIES: [&str; 8] = [
    "apple_1",
    "table",
    "iron_axe",
    "log_3",
    "tomato stew",
    "crate_7",
    "naïve jalapeño crate",
    "box_2",
];

/// Builds one of six skill-shaped subgoals over an entity from the pool.
fn subgoal(kind: usize, entity: &str) -> Subgoal {
    match kind % 6 {
        0 => Subgoal::Pick {
            object: entity.into(),
        },
        1 => Subgoal::Open {
            container: entity.into(),
        },
        2 => Subgoal::Craft {
            item: entity.into(),
        },
        3 => Subgoal::Gather {
            resource: entity.into(),
        },
        4 => Subgoal::Serve {
            dish: entity.into(),
        },
        _ => Subgoal::Place {
            object: entity.into(),
            dest: "table".into(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: whatever the menu and however the proposal was corrupted,
    /// `Ok(sg)` implies the environment affords `sg` and knows every entity
    /// it references. This is the invariant that makes "validated" mean
    /// "will not bounce off the environment as unrecognized".
    #[test]
    fn validator_never_accepts_an_unafforded_action(
        menu in proptest::collection::vec((0usize..6, 0usize..ENTITIES.len()), 1..6),
        prop_kind in 0usize..6,
        prop_entity in 0usize..ENTITIES.len(),
        // One past the end means "no flaw": the clean-proposal path.
        flaw_kind in 0usize..=SemanticFaultKind::ALL.len(),
        salt in 0u64..10_000,
    ) {
        let candidates: Vec<Subgoal> = menu
            .iter()
            .map(|&(k, e)| subgoal(k, ENTITIES[e]))
            .collect();
        let aff = AffordanceSet::from_candidates(candidates);
        let intended = subgoal(prop_kind, ENTITIES[prop_entity]);
        let proposal = match SemanticFaultKind::ALL.get(flaw_kind) {
            Some(&kind) => materialize(SemanticFlaw { kind, salt }, &intended, &aff),
            None => Proposal::Action(intended),
        };
        if let Ok(sg) = PlanValidator::validate(&proposal, &aff) {
            prop_assert!(aff.permits(&sg), "accepted unafforded action {sg}");
            prop_assert!(
                aff.unknown_entity(&sg).is_none(),
                "accepted action with unknown entity: {sg}"
            );
        }
    }
}

proptest! {
    // Each case runs real (simulated) repair inferences; keep the count
    // modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Termination: however hard the corruption schedule fights back — any
    /// re-corruption rate up to "every repair completion is itself flawed"
    /// — the repair loop stops at the attempt budget and resolves the
    /// decision exactly once, as a repair or as a residual.
    #[test]
    fn repair_loop_terminates_within_budget(
        rate in 0.0f64..=1.0,
        budget in 1u32..5,
        seed in 0u64..1_000,
        flaw_kind in 0usize..SemanticFaultKind::ALL.len(),
        salt in 0u64..10_000,
    ) {
        let aff = AffordanceSet::from_candidates(vec![
            Subgoal::Pick { object: "apple_1".into() },
            Subgoal::Place { object: "apple_1".into(), dest: "table".into() },
        ]);
        let intended = Subgoal::Pick { object: "apple_1".into() };
        let mut engine = embodied_llm::EngineHandle::from(ResilientEngine::new(
            LlmEngine::new(ModelProfile::gpt4_api(), seed)
                .with_semantic_faults(SemanticFaultProfile::uniform(rate), seed ^ 0x5e01),
            RetryPolicy::standard(),
            seed,
        ));
        let mut stats = RepairStats::default();
        let _ = guard_decision(
            &mut engine,
            RepairPolicy::Reprompt { max_attempts: budget },
            &intended,
            Some(SemanticFlaw { kind: SemanticFaultKind::ALL[flaw_kind], salt }),
            &aff,
            "sys",
            "goal",
            0.5,
            InferenceOpts::default(),
            &mut stats,
        );
        prop_assert!(
            stats.repair_attempts <= u64::from(budget),
            "{} attempts exceeded budget {budget}",
            stats.repair_attempts
        );
        prop_assert_eq!(
            stats.repaired + stats.residual_invalid,
            1,
            "rejected decision must resolve exactly once (repair or residual)"
        );
    }
}

proptest! {
    // Whole episodes per case: a small case count still samples a wide
    // swath of (rate, policy, seed) triples.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any semantic-fault rate under any repair policy terminates the
    /// episode across paradigms — corruption and repair never wedge a step
    /// loop or panic an environment.
    #[test]
    fn arbitrary_semantic_schedules_terminate_episodes(
        rate in 0.0f64..0.8,
        policy_idx in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let policy = [
            RepairPolicy::Off,
            RepairPolicy::Skip,
            RepairPolicy::Constrain,
            RepairPolicy::Reprompt { max_attempts: 2 },
        ][policy_idx];
        for name in ["DEPS", "MindAgent"] {
            let spec = workloads::find(name).expect("suite member");
            let overrides = RunOverrides {
                difficulty: Some(TaskDifficulty::Easy),
                semantic_faults: Some(SemanticFaultProfile::uniform(rate)),
                repair_policy: Some(policy),
                ..Default::default()
            };
            let report = run_episode(&spec, &overrides, seed);
            prop_assert!(report.steps > 0, "{name}: no steps ran");
        }
    }
}
