//! Property-based tests over the agent/channel fault layer: arbitrary
//! crash/recover schedules never wedge a step loop, and a channel with
//! duplication disabled never double-delivers.

use embodied_suite::prelude::*;
use proptest::prelude::*;

proptest! {
    // Each case runs a whole episode; a small case count keeps the suite
    // fast while still sampling a wide swath of schedules.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any crash/stall/coordinator-crash schedule terminates the episode —
    /// the step loops always make progress past crashed agents instead of
    /// waiting on them.
    #[test]
    fn arbitrary_fault_schedules_never_wedge_a_step_loop(
        crash in 0.0f64..0.5,
        stall in 0.0f64..0.5,
        coordinator_crash in 0.0f64..0.5,
        crash_downtime in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let profile = AgentFaultProfile {
            crash,
            stall,
            coordinator_crash,
            crash_downtime,
            // Alternate failover on/off so both recovery paths are sampled.
            failover: seed % 2 == 0,
            ..AgentFaultProfile::none()
        };
        // Centralized and decentralized both have distinct wedge risks
        // (headless coordination vs. peer suspicion); exercise each.
        for name in ["MindAgent", "CoELA"] {
            let spec = workloads::find(name).expect("suite member");
            let overrides = RunOverrides {
                difficulty: Some(TaskDifficulty::Easy),
                num_agents: Some(3),
                agent_faults: Some(profile),
                ..Default::default()
            };
            let report = run_episode(&spec, &overrides, seed);
            // Reaching this line at all proves termination; the step count
            // staying within the environment's budget proves the loop did
            // not spin past its limit either.
            prop_assert!(report.steps > 0, "{name}: no steps ran");
        }
    }

    /// With duplication off, no message is ever delivered twice — whatever
    /// the drop/corrupt/delay/partition rates are doing around it.
    #[test]
    fn duplication_off_never_double_delivers(
        drop in 0.0f64..0.6,
        corrupt in 0.0f64..0.6,
        delay in 0.0f64..0.6,
        partition in 0.0f64..0.5,
        seed in 0u64..1_000,
    ) {
        let channel = ChannelProfile {
            drop,
            corrupt,
            delay,
            partition,
            duplicate: 0.0,
            ..ChannelProfile::none()
        };
        let spec = workloads::find("CoELA").expect("suite member");
        let overrides = RunOverrides {
            difficulty: Some(TaskDifficulty::Easy),
            num_agents: Some(4),
            channel: Some(channel),
            ..Default::default()
        };
        let report = run_episode(&spec, &overrides, seed);
        prop_assert_eq!(
            report.channel.duplicated,
            0,
            "duplication disabled but {} extra copies were delivered",
            report.channel.duplicated
        );
    }
}
