//! Oracle completeness: for every environment, difficulty and sensible
//! team size, an agent that always follows the oracle finishes comfortably
//! within the step budget. This is the simulation's keystone guarantee —
//! if the oracle can't finish, measured "success rates" would be artifacts
//! of broken tasks rather than of LLM reasoning quality.

use embodied_suite::env::{
    AlfWorldEnv, BoxVariant, BoxWorldEnv, CraftEnv, CuisineEnv, Environment, HouseholdEnv,
    KitchenEnv, LowLevel, ManipulationEnv, Subgoal, TaskDifficulty, TransportEnv,
};

fn oracle_rollout(env: &mut dyn Environment, seed: u64) -> (bool, usize) {
    let mut low = LowLevel::controller(seed ^ 0x0c1e);
    let mut steps = 0;
    // Allow 2× the budget: the oracle should comfortably fit inside 1×,
    // but actuation is stochastic and the assertion below checks ≤ budget
    // on at least most seeds, not every unlucky one.
    while !env.is_complete() && steps < env.max_steps() * 2 {
        for agent in 0..env.num_agents() {
            let sg = env
                .oracle_subgoals(agent)
                .first()
                .cloned()
                .unwrap_or(Subgoal::Wait);
            env.execute(agent, &sg, &mut low);
        }
        steps += 1;
    }
    (env.is_complete(), steps)
}

fn check<F>(name: &str, team_sizes: &[usize], build: F)
where
    F: Fn(TaskDifficulty, usize, u64) -> Box<dyn Environment>,
{
    for difficulty in TaskDifficulty::ALL {
        for &agents in team_sizes {
            let mut within_budget = 0;
            let mut completed = 0;
            let seeds = 4;
            for seed in 0..seeds {
                let mut env = build(difficulty, agents, seed);
                let budget = env.max_steps();
                let (done, steps) = oracle_rollout(env.as_mut(), seed);
                if done {
                    completed += 1;
                    if steps <= budget {
                        within_budget += 1;
                    }
                }
            }
            assert_eq!(
                completed, seeds,
                "{name} {difficulty}/{agents} agents: oracle failed to finish"
            );
            assert!(
                within_budget * 4 >= seeds * 3,
                "{name} {difficulty}/{agents} agents: oracle fit the budget \
                 only {within_budget}/{seeds} times — budget too tight"
            );
        }
    }
}

#[test]
fn transport_oracle_completes() {
    check("TDW-MAT", &[1, 2, 4], |d, a, s| {
        Box::new(TransportEnv::new(d, a, s))
    });
}

#[test]
fn household_oracle_completes() {
    check("C-WAH", &[1, 2, 4], |d, a, s| {
        Box::new(HouseholdEnv::new(d, a, s))
    });
}

#[test]
fn cuisine_oracle_completes() {
    check("CuisineWorld", &[1, 2, 4], |d, a, s| {
        Box::new(CuisineEnv::new(d, a, s))
    });
}

#[test]
fn boxworld_oracles_complete() {
    for variant in [
        BoxVariant::BoxNet1,
        BoxVariant::BoxNet2,
        BoxVariant::Warehouse,
        BoxVariant::BoxLift,
    ] {
        check(&variant.to_string(), &[2, 3], move |d, a, s| {
            Box::new(BoxWorldEnv::new(variant, d, a, s))
        });
    }
}

#[test]
fn craft_oracle_completes() {
    check("Minecraft-Craft", &[1], |d, a, s| {
        Box::new(CraftEnv::new(d, a, s))
    });
}

#[test]
fn manipulation_oracle_completes() {
    check("RoCoBench", &[2, 3], |d, a, s| {
        Box::new(ManipulationEnv::new(d, a, s))
    });
}

#[test]
fn kitchen_oracle_completes() {
    check("Franka-Kitchen", &[1], |d, a, s| {
        Box::new(KitchenEnv::new(d, a, s))
    });
}

#[test]
fn alfworld_oracle_completes() {
    check("ALFWorld", &[1], |d, a, s| {
        Box::new(AlfWorldEnv::new(d, a, s))
    });
}
