//! Argument parsing for the `suite` command-line front end — kept in the
//! library so it is unit-testable.

use crate::prelude::*;
use embodied_agents::EnvKind;

/// A fully parsed `suite run` invocation.
#[derive(Debug, Clone)]
pub struct RunCommand {
    /// The workload to run.
    pub spec: WorkloadSpec,
    /// Accumulated overrides.
    pub overrides: RunOverrides,
    /// Episodes to run (≥ 1).
    pub episodes: usize,
    /// Base seed.
    pub seed: u64,
    /// Optional Chrome-trace output path.
    pub trace_file: Option<String>,
}

/// Parses `suite run <workload> [flags…]` arguments (everything after
/// `run`).
///
/// # Errors
///
/// Returns a human-readable message for unknown workloads, unknown flags,
/// or malformed values.
pub fn parse_run(args: &[String]) -> Result<RunCommand, String> {
    let mut iter = args.iter();
    let name = iter.next().ok_or("missing workload name")?;
    let spec = workloads::find(name).ok_or_else(|| format!("unknown workload '{name}'"))?;

    let mut overrides = RunOverrides::default();
    let mut toggles = ModuleToggles::all_on();
    let mut episodes = 1usize;
    let mut seed = 42u64;
    let mut trace_file: Option<String> = None;

    while let Some(flag) = iter.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--difficulty" => {
                overrides.difficulty = Some(match value("--difficulty")?.as_str() {
                    "easy" => TaskDifficulty::Easy,
                    "medium" => TaskDifficulty::Medium,
                    "hard" => TaskDifficulty::Hard,
                    other => return Err(format!("unknown difficulty '{other}'")),
                });
            }
            "--agents" => {
                overrides.num_agents = Some(
                    value("--agents")?
                        .parse()
                        .map_err(|_| "--agents needs a number".to_owned())?,
                );
            }
            "--episodes" => {
                episodes = value("--episodes")?
                    .parse()
                    .map_err(|_| "--episodes needs a number".to_owned())?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs a number".to_owned())?;
            }
            "--planner" => {
                overrides.planner = Some(match value("--planner")?.as_str() {
                    "gpt4" => ModelProfile::gpt4_api(),
                    "llama3-8b" => ModelProfile::llama3_8b(),
                    other => return Err(format!("unknown planner '{other}'")),
                });
            }
            "--memory" => {
                overrides.memory_capacity = Some(match value("--memory")?.as_str() {
                    "none" => MemoryCapacity::None,
                    "full" => MemoryCapacity::Full,
                    n => MemoryCapacity::Steps(
                        n.parse()
                            .map_err(|_| "--memory needs none|full|<steps>".to_owned())?,
                    ),
                });
            }
            "--env" => {
                overrides.env = Some(match value("--env")?.as_str() {
                    "transport" => EnvKind::Transport,
                    "household" => EnvKind::Household,
                    "cuisine" => EnvKind::Cuisine,
                    "craft" => EnvKind::Craft,
                    "manipulation" => EnvKind::Manipulation,
                    "kitchen" => EnvKind::Kitchen,
                    "alfworld" => EnvKind::AlfWorld,
                    other => return Err(format!("unknown env '{other}'")),
                });
            }
            "--trace" => trace_file = Some(value("--trace")?.clone()),
            "--no-memory" => toggles.memory = false,
            "--no-communication" => toggles.communication = false,
            "--no-reflection" => toggles.reflection = false,
            "--no-execution" => toggles.execution = false,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if toggles != ModuleToggles::all_on() {
        overrides.toggles = Some(toggles);
    }
    Ok(RunCommand {
        spec,
        overrides,
        episodes: episodes.max(1),
        seed,
        trace_file,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(text: &str) -> Vec<String> {
        text.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn minimal_invocation() {
        let cmd = parse_run(&args("CoELA")).unwrap();
        assert_eq!(cmd.spec.name, "CoELA");
        assert_eq!(cmd.episodes, 1);
        assert_eq!(cmd.seed, 42);
        assert!(cmd.trace_file.is_none());
        assert!(cmd.overrides.toggles.is_none());
    }

    #[test]
    fn full_invocation() {
        let cmd = parse_run(&args(
            "JARVIS-1 --difficulty hard --agents 4 --episodes 5 --seed 9 \
             --planner llama3-8b --memory 16 --env alfworld --no-reflection \
             --trace /tmp/t.json",
        ))
        .unwrap();
        assert_eq!(cmd.spec.name, "JARVIS-1");
        assert_eq!(cmd.overrides.difficulty, Some(TaskDifficulty::Hard));
        assert_eq!(cmd.overrides.num_agents, Some(4));
        assert_eq!(cmd.episodes, 5);
        assert_eq!(cmd.seed, 9);
        assert_eq!(
            cmd.overrides.memory_capacity,
            Some(MemoryCapacity::Steps(16))
        );
        assert!(matches!(cmd.overrides.env, Some(EnvKind::AlfWorld)));
        assert!(!cmd.overrides.toggles.unwrap().reflection);
        assert_eq!(cmd.trace_file.as_deref(), Some("/tmp/t.json"));
        assert_eq!(
            cmd.overrides.planner.as_ref().unwrap().name,
            "Llama-3-8B (local)"
        );
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let err = parse_run(&args("NotASystem")).unwrap_err();
        assert!(err.contains("unknown workload"));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse_run(&args("CoELA --frobnicate")).unwrap_err();
        assert!(err.contains("unknown flag"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse_run(&args("CoELA --agents")).unwrap_err();
        assert!(err.contains("needs a value"));
    }

    #[test]
    fn malformed_number_is_an_error() {
        let err = parse_run(&args("CoELA --agents many")).unwrap_err();
        assert!(err.contains("needs a number"));
    }

    #[test]
    fn zero_episodes_clamps_to_one() {
        let cmd = parse_run(&args("CoELA --episodes 0")).unwrap();
        assert_eq!(cmd.episodes, 1);
    }
}
