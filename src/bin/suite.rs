//! `suite` — command-line front end for the embodied workload suite.
//!
//! ```text
//! suite list
//! suite run CoELA [--difficulty easy|medium|hard] [--agents N]
//!                 [--episodes K] [--seed S] [--planner gpt4|llama3-8b]
//!                 [--no-memory] [--no-communication] [--no-reflection]
//!                 [--no-execution] [--memory none|full|<steps>] [--trace FILE]
//!                 [--env transport|household|cuisine|craft|manipulation|
//!                        kitchen|alfworld]
//! ```

use embodied_suite::cli::{parse_run, RunCommand};
use embodied_suite::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("run") => match parse_run(&args[1..]) {
            Ok(RunCommand {
                spec,
                overrides,
                episodes,
                seed,
                trace_file,
            }) => {
                run(&spec, &overrides, episodes, seed);
                if let Some(path) = trace_file {
                    let (_, json) = run_episode_traced(&spec, &overrides, seed);
                    match std::fs::write(&path, json) {
                        Ok(()) => println!("\nwrote chrome trace of seed {seed} to {path}"),
                        Err(err) => eprintln!("could not write {path}: {err}"),
                    }
                }
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{USAGE}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  suite list
  suite run <workload> [--difficulty easy|medium|hard] [--agents N]
            [--episodes K] [--seed S] [--planner gpt4|llama3-8b]
            [--no-memory] [--no-communication] [--no-reflection]
            [--no-execution] [--memory none|full|<steps>] [--trace FILE]
            [--env transport|household|cuisine|craft|manipulation|kitchen|alfworld]";

fn list() {
    let mut table = Table::new(["workload", "paradigm", "agents", "planner", "application"]);
    for spec in workloads::registry() {
        table.row([
            spec.name.to_owned(),
            spec.paradigm.to_string(),
            spec.default_agents.to_string(),
            spec.config.planner.name.clone(),
            spec.application.to_owned(),
        ]);
    }
    println!("{}", table.render());
}

fn run(spec: &WorkloadSpec, overrides: &RunOverrides, episodes: usize, seed: u64) {
    println!(
        "{} ({} paradigm) — {} episode(s), seed {seed}\n",
        spec.name, spec.paradigm, episodes
    );
    let agg = run_many(spec, overrides, episodes, seed, spec.name);
    println!("success      : {:.0}%", agg.success_rate * 100.0);
    println!("steps        : {:.1}", agg.mean_steps);
    println!(
        "latency      : {} end-to-end, {} per step",
        agg.mean_latency, agg.mean_step_latency
    );
    println!(
        "LLM usage    : {:.1} calls/ep, {:.0} tokens/ep, ${:.2} total",
        agg.calls_per_episode(),
        agg.tokens_per_episode(),
        agg.tokens.cost_usd
    );
    if agg.messages.generated > 0 {
        println!(
            "messages     : {:.1}/ep, {:.0}% useful",
            agg.messages.generated as f64 / agg.episodes as f64,
            agg.messages.utility() * 100.0
        );
    }
    println!("\nmodule breakdown:");
    for module in ModuleKind::ALL {
        let share = agg.module_fraction(module);
        println!(
            "  {:>6}: {:>6.1}%  {}",
            module.label(),
            share * 100.0,
            embodied_suite::profiler::ascii_bar(share, 1.0, 28)
        );
    }
}
