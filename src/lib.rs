//! # embodied-suite
//!
//! Facade crate for the embodied-agent workload suite: re-exports the
//! substrates and the agent framework so examples and downstream users can
//! depend on one crate.
//!
//! ```
//! use embodied_suite::prelude::*;
//!
//! let spec = workloads::find("CoELA").expect("suite member");
//! let report = run_episode(&spec, &RunOverrides::default(), 7);
//! println!("{}: {} in {}", report.workload, report.outcome, report.latency);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;

pub use embodied_agents as agents;
pub use embodied_env as env;
pub use embodied_exec as exec;
pub use embodied_llm as llm;
pub use embodied_profiler as profiler;

/// Common imports for examples and quick experiments.
pub mod prelude {
    pub use embodied_agents::{
        run_episode, run_episode_traced, run_many, workloads, AgentConfig, AgentFaultProfile,
        ChannelProfile, MemoryCapacity, ModuleToggles, Optimizations, Paradigm, RunOverrides,
        WorkloadSpec,
    };
    pub use embodied_env::{Environment, TaskDifficulty};
    pub use embodied_llm::{LlmEngine, ModelProfile};
    pub use embodied_profiler::{
        Aggregate, EpisodeReport, ModuleKind, Outcome, SimDuration, Table,
    };
}
