//! Test-runner plumbing: per-test configuration, the deterministic value
//! source strategies draw from, and the error type `prop_assert!` returns.

use rand::{RngCore, SeedableRng, StdRng};
use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic value source for strategies. Seeded from the property's
/// name, so every run of the suite generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner whose stream is a pure function of `name`.
    pub fn new(name: &str) -> Self {
        // FNV-1a over the test name keeps distinct tests on distinct streams.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// The underlying generator strategies sample from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl RngCore for TestRunner {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Failure of a single generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property's assertion did not hold.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a rendered assertion message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias used by `prop_assert!` expansions.
pub type TestCaseResult = Result<(), TestCaseError>;
