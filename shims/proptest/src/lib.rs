//! Workspace-local stand-in for the subset of `proptest` this suite uses.
//!
//! The build container cannot reach crates.io, so the workspace pins
//! `proptest` to this path crate. It keeps the same public shape —
//! `proptest! { fn name(arg in strategy) { .. } }`, `prop_assert*!`,
//! `prop_oneof!`, `Strategy::prop_map`, `collection::vec`,
//! `string::string_regex` — backed by a plain seeded random-value generator.
//! There is no shrinking: a failing case reports its generated inputs
//! instead. Test names seed the generator, so runs are deterministic.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]`-able function running `ProptestConfig::cases` cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __runner = $crate::test_runner::TestRunner::new(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut __runner);
                    )+
                    let __inputs = [
                        $(format!("{} = {:?}", stringify!($arg), &$arg)),+
                    ].join(", ");
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        panic!(
                            "property '{}' failed at case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __err,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?} == {:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(__left == __right, $($fmt)+);
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `{:?} != {:?}`",
            __left,
            __right
        );
    }};
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
