//! String strategies from a regex subset: literals, character classes
//! (`[a-z0-9_]`), groups, alternation, and the `?`/`*`/`+`/`{m}`/`{m,n}`
//! quantifiers — enough to generate every pattern the suite's tests use.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::{Rng, RngCore, StdRng};
use std::fmt;

/// Unbounded quantifiers (`*`, `+`, `{m,}`) generate at most this many extra
/// repetitions; generation needs finite strings.
const UNBOUNDED_REPEAT_CAP: u32 = 4;

/// Rejected pattern, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Class(Vec<(char, char)>),
    Sequence(Vec<Node>),
    Alternation(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

/// Builds a [`Strategy`] generating strings matched by `pattern`.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut parser = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let node = parser.parse_alternation()?;
    if parser.pos != parser.chars.len() {
        return Err(Error(format!(
            "unexpected '{}' at offset {}",
            parser.chars[parser.pos], parser.pos
        )));
    }
    Ok(RegexGeneratorStrategy { node })
}

/// Output of [`string_regex`].
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    node: Node,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn new_value(&self, runner: &mut TestRunner) -> String {
        let mut out = String::new();
        generate(&self.node, runner.rng(), &mut out);
        out
    }
}

fn generate(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = (rng.next_u64() % u64::from(total)) as u32;
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick).expect("class range is valid"));
                    return;
                }
                pick -= span;
            }
        }
        Node::Sequence(items) => {
            for item in items {
                generate(item, rng, out);
            }
        }
        Node::Alternation(arms) => {
            let arm = rng.gen_range(0..arms.len());
            generate(&arms[arm], rng, out);
        }
        Node::Repeat(inner, lo, hi) => {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                generate(inner, rng, out);
            }
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn expect(&mut self, want: char) -> Result<(), Error> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            other => Err(Error(format!("expected '{want}', found {other:?}"))),
        }
    }

    fn parse_alternation(&mut self) -> Result<Node, Error> {
        let mut arms = vec![self.parse_sequence()?];
        while self.peek() == Some('|') {
            self.bump();
            arms.push(self.parse_sequence()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().expect("one arm")
        } else {
            Node::Alternation(arms)
        })
    }

    fn parse_sequence(&mut self) -> Result<Node, Error> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            items.push(self.parse_quantifier(atom)?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("one item")
        } else {
            Node::Sequence(items)
        })
    }

    fn parse_atom(&mut self) -> Result<Node, Error> {
        match self.bump() {
            Some('(') => {
                let inner = self.parse_alternation()?;
                self.expect(')')?;
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('\\') => match self.bump() {
                Some('d') => Ok(Node::Class(vec![('0', '9')])),
                Some('w') => Ok(Node::Class(vec![
                    ('a', 'z'),
                    ('A', 'Z'),
                    ('0', '9'),
                    ('_', '_'),
                ])),
                Some('s') => Ok(Node::Literal(' ')),
                Some(c) => Ok(Node::Literal(c)),
                None => Err(Error("dangling escape".into())),
            },
            Some(c @ ('?' | '*' | '+' | '{' | '}' | ']')) => {
                Err(Error(format!("unexpected metacharacter '{c}'")))
            }
            Some('.') => Ok(Node::Class(vec![
                ('a', 'z'),
                ('A', 'Z'),
                ('0', '9'),
                (' ', ' '),
            ])),
            Some(c) => Ok(Node::Literal(c)),
            None => Err(Error("unexpected end of pattern".into())),
        }
    }

    fn parse_quantifier(&mut self, atom: Node) -> Result<Node, Error> {
        let node = match self.peek() {
            Some('?') => Node::Repeat(Box::new(atom), 0, 1),
            Some('*') => Node::Repeat(Box::new(atom), 0, UNBOUNDED_REPEAT_CAP),
            Some('+') => Node::Repeat(Box::new(atom), 1, 1 + UNBOUNDED_REPEAT_CAP),
            Some('{') => {
                self.bump();
                let lo = self.parse_number()?;
                let hi = match self.peek() {
                    Some(',') => {
                        self.bump();
                        if self.peek() == Some('}') {
                            lo + UNBOUNDED_REPEAT_CAP
                        } else {
                            self.parse_number()?
                        }
                    }
                    _ => lo,
                };
                self.expect('}')?;
                if hi < lo {
                    return Err(Error(format!("inverted repetition {{{lo},{hi}}}")));
                }
                return Ok(Node::Repeat(Box::new(atom), lo, hi));
            }
            _ => return Ok(atom),
        };
        self.bump();
        Ok(node)
    }

    fn parse_number(&mut self) -> Result<u32, Error> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(Error("expected a number in repetition".into()));
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .map_err(|e| Error(format!("bad repetition count: {e}")))
    }

    fn parse_class(&mut self) -> Result<Node, Error> {
        let mut ranges = Vec::new();
        loop {
            let c = match self.bump() {
                Some(']') if !ranges.is_empty() => break,
                Some('\\') => self.bump().ok_or_else(|| Error("dangling escape".into()))?,
                Some(c) => c,
                None => return Err(Error("unterminated character class".into())),
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = self
                    .bump()
                    .ok_or_else(|| Error("unterminated class range".into()))?;
                if hi < c {
                    return Err(Error(format!("inverted class range {c}-{hi}")));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        Ok(Node::Class(ranges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &str, n: usize) -> Vec<String> {
        let strat = string_regex(pattern).expect("valid pattern");
        let mut runner = TestRunner::new(pattern);
        (0..n).map(|_| strat.new_value(&mut runner)).collect()
    }

    #[test]
    fn word_lists_match_shape() {
        for s in sample("[a-z]{1,12}( [a-z]{1,12}){0,8}", 200) {
            assert!(!s.is_empty());
            for word in s.split(' ') {
                assert!((1..=12).contains(&word.len()), "bad word in {s:?}");
                assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn optional_suffix_pattern() {
        let mut with_suffix = 0;
        for s in sample("[a-z]{1,8}(_[0-9]{1,2})?", 200) {
            let (stem, suffix) = match s.split_once('_') {
                Some((stem, suffix)) => {
                    with_suffix += 1;
                    (stem, Some(suffix))
                }
                None => (s.as_str(), None),
            };
            assert!((1..=8).contains(&stem.len()));
            assert!(stem.chars().all(|c| c.is_ascii_lowercase()));
            if let Some(suffix) = suffix {
                assert!((1..=2).contains(&suffix.len()));
                assert!(suffix.chars().all(|c| c.is_ascii_digit()));
            }
        }
        assert!(with_suffix > 20, "suffix arm never taken");
    }

    #[test]
    fn alternation_and_exact_counts() {
        for s in sample("(ab|cd){3}", 50) {
            assert_eq!(s.len(), 6);
            assert!(s.as_bytes().chunks(2).all(|c| c == b"ab" || c == b"cd"));
        }
    }

    #[test]
    fn bad_patterns_are_rejected() {
        assert!(string_regex("[a-z").is_err());
        assert!(string_regex("(ab").is_err());
        assert!(string_regex("a{3,1}").is_err());
        assert!(string_regex("*a").is_err());
    }
}
