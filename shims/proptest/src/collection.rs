//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::Rng;

/// Sizes accepted by [`vec`]: an exact length or a half-open range.
pub trait IntoSizeRange {
    /// Inclusive lower and exclusive upper length bound.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    assert!(min_len < max_len, "empty vec length range");
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

/// Output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let len = runner.rng().gen_range(self.min_len..self.max_len);
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut runner = TestRunner::new("exact_and_ranged_lengths");
        let exact = vec(0u64..100, 6);
        let ranged = vec(0u64..100, 1..25);
        for _ in 0..100 {
            assert_eq!(exact.new_value(&mut runner).len(), 6);
            let len = ranged.new_value(&mut runner).len();
            assert!((1..25).contains(&len));
        }
    }
}
