//! The [`Strategy`] trait and its core combinators: ranges, literals,
//! tuples, `prop_map`, boxing, and uniform unions (`prop_oneof!`).

use crate::test_runner::TestRunner;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy
/// simply draws a fresh value from the runner's deterministic stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transforms generated values through `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }

    /// Erases the concrete strategy type (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |runner: &mut TestRunner| {
            self.new_value(runner)
        }))
    }
}

/// A type-erased strategy producing `T`.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRunner) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        (self.0)(runner)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.map)(self.source.new_value(runner))
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        let arm = runner.rng().gen_range(0..self.arms.len());
        self.arms[arm].new_value(runner)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i32, u32, i64, u64, usize, f32, f64);

/// String literals act as regex strategies, e.g. `a in "[a-z]{1,12}"`.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, runner: &mut TestRunner) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|err| panic!("invalid regex strategy {self:?}: {err:?}"))
            .new_value(runner)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident $v:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.new_value(runner),)+)
            }
        }
    };
}

tuple_strategy!(A a);
tuple_strategy!(A a, B b);
tuple_strategy!(A a, B b, C c);
tuple_strategy!(A a, B b, C c, D d);
tuple_strategy!(A a, B b, C c, D d, E e);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut runner = TestRunner::new("ranges_and_maps_compose");
        let strat = (0u64..10, (-5i32..5).prop_map(|v| v * 2));
        for _ in 0..200 {
            let (a, b) = strat.new_value(&mut runner);
            assert!(a < 10);
            assert!((-10..10).contains(&b) && b % 2 == 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut runner = TestRunner::new("union_hits_every_arm");
        let strat = Union::new(vec![
            Just(0u8).boxed(),
            Just(1u8).boxed(),
            Just(2u8).boxed(),
        ]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.new_value(&mut runner) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn same_test_name_same_stream() {
        let mut a = TestRunner::new("stream");
        let mut b = TestRunner::new("stream");
        let strat = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
        }
    }
}
