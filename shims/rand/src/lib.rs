//! Workspace-local stand-in for the subset of the `rand` 0.8 API the suite
//! uses: `StdRng::seed_from_u64` plus `gen_range` / `gen_bool` / `gen` on the
//! [`Rng`] trait.
//!
//! The container this suite builds in has no network access to crates.io, so
//! the workspace pins `rand` to this path crate. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, well distributed,
//! and identical across platforms, which is all the simulation needs (every
//! consumer seeds explicitly; there is no OS entropy source here on purpose).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

pub use rngs::StdRng;

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Rngs that can be deterministically constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Converts the top 53 bits of a word into a float in `[0, 1)`.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from an rng via [`Rng::gen`].
pub trait Uniform: Sized {
    /// Draws one uniformly distributed value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Types with a uniform sampler over `[low, high)` / `[low, high]` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one value; `inclusive` selects the closed upper bound.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(rng, start, end, true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let unit = unit_f64(rng.next_u64()) as $t;
                let value = low + unit * (high - low);
                // Guard the open upper bound against rounding.
                if inclusive || value < high {
                    value
                } else {
                    low
                }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform draw of a whole value (`u32`, `u64`, or `f64` in `[0,1)`).
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..40);
            assert!((-5..40).contains(&v));
            let f = rng.gen_range(0.6..=1.4);
            assert!((0.6..=1.4).contains(&f));
            let u = rng.gen_range(3usize..4);
            assert_eq!(u, 3);
            let x = rng.gen_range(-0.9..0.9);
            assert!((-0.9..0.9).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn uniform_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean = {mean}");
    }
}
