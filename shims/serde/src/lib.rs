//! Workspace-local stand-in for the `serde` trait surface.
//!
//! The suite derives `Serialize`/`Deserialize` on its data types as API
//! surface for downstream consumers, but contains no serialization call
//! sites (all rendered output is hand-formatted markdown / Chrome JSON).
//! Since the build container cannot reach crates.io, the workspace pins
//! `serde` to this path crate: the traits exist as markers and the derives
//! expand to nothing. Swapping back to upstream serde is a one-line change
//! in the workspace manifest.

#![forbid(unsafe_code)]

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
