//! Workspace-local stand-in for the subset of the `criterion` API the
//! suite's `harness = false` benches use. The build container cannot reach
//! crates.io, so the workspace pins `criterion` to this path crate.
//!
//! Each benchmark runs a small fixed number of timed iterations and prints
//! one mean-time line. That keeps `cargo test` (which builds and runs bench
//! targets) fast while preserving the real statistical harness's API shape —
//! swap the workspace manifest back to upstream criterion for publishable
//! numbers. Set `CRITERION_SHIM_ITERS` to raise the iteration count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Defeats constant-propagation around benchmark inputs and outputs.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn shim_iters() -> u64 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Entry point handed to each `criterion_group!` target function.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            iters: shim_iters(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.iters, &mut routine);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.iters, &mut routine);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let iters = self.criterion.iters;
        run_one(&label, iters, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier distinguishing parameterized benchmark instances.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a function name plus parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Timing harness handed to each benchmark routine.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the shim's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, routine: &mut F) {
    let mut bencher = Bencher { iters };
    let start = Instant::now();
    routine(&mut bencher);
    let elapsed = start.elapsed();
    let mean_us = elapsed.as_secs_f64() * 1e6 / iters.max(1) as f64;
    println!("bench {label:<40} ~{mean_us:>10.2} us/iter ({iters} iters)");
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
