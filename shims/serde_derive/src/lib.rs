//! No-op derive macros backing the workspace-local `serde` stand-in: the
//! derives accept the same attribute grammar (`#[serde(...)]`) but emit no
//! code, since nothing in the workspace serializes at runtime.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
